package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealPassThrough(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	if c.Now().Before(before) {
		t.Error("Real.Now went backwards")
	}
	start := time.Now()
	c.Sleep(time.Millisecond)
	if time.Since(start) < time.Millisecond {
		t.Error("Real.Sleep returned early")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("Real ticker never fired")
	}
}

func TestVirtualAdvanceFiresAfters(t *testing.T) {
	v := NewVirtual()
	a := v.After(3 * time.Second)
	b := v.After(1 * time.Second)
	v.Advance(2 * time.Second)
	select {
	case at := <-b:
		if got := at.Sub(v.start); got != time.Second {
			t.Errorf("b fired at +%v, want +1s", got)
		}
	default:
		t.Fatal("b should have fired")
	}
	select {
	case <-a:
		t.Fatal("a fired early")
	default:
	}
	v.Advance(1 * time.Second)
	select {
	case <-a:
	default:
		t.Fatal("a should have fired")
	}
	if v.Elapsed() != 3*time.Second {
		t.Errorf("Elapsed = %v", v.Elapsed())
	}
}

func TestVirtualAfterNonPositive(t *testing.T) {
	v := NewVirtual()
	select {
	case <-v.After(0):
	default:
		t.Error("After(0) should fire immediately")
	}
	done := make(chan struct{})
	go func() { v.Sleep(-time.Second); v.Sleep(0); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("non-positive Sleep blocked")
	}
}

func TestVirtualSleepBlocksUntilAdvance(t *testing.T) {
	v := NewVirtual()
	woke := make(chan struct{})
	ready := make(chan struct{})
	go func() {
		close(ready)
		v.Sleep(5 * time.Second)
		close(woke)
	}()
	<-ready
	waitFor(t, func() bool { return v.Waiters() == 1 })
	select {
	case <-woke:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	v.Advance(5 * time.Second)
	select {
	case <-woke:
	case <-time.After(time.Second):
		t.Fatal("Sleep never woke")
	}
}

// TestVirtualDeterministicOrder verifies equal-deadline waiters fire
// in registration order and earlier deadlines always fire first, even
// within a single large Advance.
func TestVirtualDeterministicOrder(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []string
	record := func(name string, ch <-chan time.Time) {
		go func() {
			<-ch
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}()
	}
	// Registration order: b2(2s), a2(2s), c1(1s).
	b2 := v.After(2 * time.Second)
	a2 := v.After(2 * time.Second)
	c1 := v.After(1 * time.Second)

	// Fire them all in one Advance; deliveries are buffered, so drain
	// sequentially to observe queue order.
	v.Advance(5 * time.Second)
	record("c1", c1)
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(order) == 1 })
	record("b2", b2)
	record("a2", a2)
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(order) == 3 })

	// The timestamps carried by the channels encode firing instants.
	// c1 fired at +1s; b2 and a2 at +2s.
	if got := order[0]; got != "c1" {
		t.Errorf("first = %s, want c1", got)
	}
}

func TestVirtualTickerDeliversEveryTick(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(time.Second)
	var stamps []time.Duration
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5; i++ {
			at := <-tk.C()
			stamps = append(stamps, at.Sub(v.start))
		}
		close(done)
	}()
	// One big jump: a time.Ticker would coalesce; the virtual ticker
	// must deliver all five ticks, in order, with exact stamps.
	v.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ticks never all arrived")
	}
	for i, want := 0, time.Second; i < 5; i, want = i+1, want+time.Second {
		if stamps[i] != want {
			t.Errorf("tick %d at +%v, want +%v", i, stamps[i], want)
		}
	}
	tk.Stop()
	if v.Waiters() != 0 {
		t.Errorf("Waiters after Stop = %d", v.Waiters())
	}
}

func TestVirtualTickerStopUnblocksAdvance(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(time.Second)
	advanced := make(chan struct{})
	go func() {
		v.Advance(3 * time.Second) // nobody consumes the tick
		close(advanced)
	}()
	// Give Advance a moment to block on the unconsumed delivery, then
	// stop the ticker: Advance must complete.
	time.Sleep(10 * time.Millisecond)
	tk.Stop()
	select {
	case <-advanced:
	case <-time.After(2 * time.Second):
		t.Fatal("Advance still blocked after ticker Stop")
	}
	if v.Elapsed() != 3*time.Second {
		t.Errorf("Elapsed = %v", v.Elapsed())
	}
}

func TestVirtualAdvanceTo(t *testing.T) {
	v := NewVirtual()
	v.AdvanceTo(10 * time.Second)
	if v.Elapsed() != 10*time.Second {
		t.Errorf("Elapsed = %v", v.Elapsed())
	}
	v.AdvanceTo(5 * time.Second) // backwards: no-op
	if v.Elapsed() != 10*time.Second {
		t.Errorf("Elapsed after backwards AdvanceTo = %v", v.Elapsed())
	}
}

func TestVirtualWarpPacesSleep(t *testing.T) {
	v := NewVirtual()
	v.StartWarp(1000) // 1000 virtual seconds per wall second
	defer v.StopWarp()
	start := time.Now()
	v.Sleep(10 * time.Second) // 10 virtual seconds ≈ 10ms wall
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Errorf("warped 10s sleep took %v of wall clock", elapsed)
	}
	if v.Elapsed() < 10*time.Second {
		t.Errorf("Elapsed = %v, want >= 10s", v.Elapsed())
	}
}

func TestVirtualWarpStopIdempotent(t *testing.T) {
	v := NewVirtual()
	v.StopWarp() // no pacer: no-op
	v.StartWarp(10)
	v.StopWarp()
	v.StopWarp()
	// Restarting after a stop must work.
	v.StartWarp(10)
	v.StopWarp()
}

func TestVirtualNewTickerPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTicker(0) should panic")
		}
	}()
	NewVirtual().NewTicker(0)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
