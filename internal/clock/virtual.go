package clock

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Virtual is a deterministic clock for warp-speed emulation. It only
// moves when Advance is called: waiters (sleeps, afters, ticker fires)
// are kept in a queue ordered by deadline — ties broken by
// registration order — and Advance fires them one at a time, setting
// the clock to each deadline as it goes. Two runs that register the
// same waiters and make the same Advance calls observe identical
// timelines.
//
// Delivery semantics differ by waiter kind, deliberately:
//
//   - After/Sleep waiters get a buffered send. They are transient;
//     a receiver that lost interest (udprpc's retry race) costs
//     nothing.
//   - Ticker fires are delivered synchronously: Advance blocks until
//     the consuming daemon has received the tick (or the ticker is
//     stopped). Virtual tickers therefore never coalesce or drop
//     ticks the way time.Ticker does, which keeps daemon loops
//     deterministic under arbitrarily large advances.
//
// A single goroutine should drive Advance — either an experiment
// harness in lockstep, or the warp pacer started by StartWarp, never
// both at once. Advance serializes internally, so violating this rule
// is safe but destroys the deterministic schedule.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	start   time.Time
	seq     uint64
	waiters []*waiter

	advMu    sync.Mutex // serializes Advance
	warpStop chan struct{}
	warpDone chan struct{}
}

type waiter struct {
	deadline time.Time
	seq      uint64
	ch       chan time.Time // After/Sleep: buffered(1)
	tk       *vticker       // ticker waiter when non-nil
}

// NewVirtual returns a virtual clock at a fixed epoch (the Unix zero
// instant). Absolute readings are only meaningful relative to each
// other; Elapsed gives the emulated time since creation.
func NewVirtual() *Virtual {
	epoch := time.Unix(0, 0).UTC()
	return &Virtual{now: epoch, start: epoch}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Elapsed returns the virtual time advanced since the clock was
// created.
func (v *Virtual) Elapsed() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now.Sub(v.start)
}

// Waiters returns the number of queued waiters (pending afters plus
// armed tickers). Harnesses use it to confirm daemon start-up before
// the first Advance.
func (v *Virtual) Waiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// After implements Clock. A non-positive d fires immediately.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	if d <= 0 {
		ch <- v.now
		v.mu.Unlock()
		return ch
	}
	v.insertLocked(&waiter{deadline: v.now.Add(d), seq: v.seq, ch: ch})
	v.mu.Unlock()
	return ch
}

// Sleep implements Clock: it blocks until the clock advances past the
// deadline. Some other goroutine must be driving Advance (or a warp
// pacer must be running), or Sleep blocks forever.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// NewTicker implements Clock.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic(fmt.Sprintf("clock: non-positive ticker period %v", d))
	}
	tk := &vticker{v: v, period: d, c: make(chan time.Time), stop: make(chan struct{})}
	v.mu.Lock()
	v.insertLocked(&waiter{deadline: v.now.Add(d), seq: v.seq, tk: tk})
	v.mu.Unlock()
	return tk
}

// insertLocked queues w in (deadline, seq) order and bumps seq.
func (v *Virtual) insertLocked(w *waiter) {
	v.seq++
	i := sort.Search(len(v.waiters), func(i int) bool {
		o := v.waiters[i]
		if !o.deadline.Equal(w.deadline) {
			return o.deadline.After(w.deadline)
		}
		return o.seq > w.seq
	})
	v.waiters = append(v.waiters, nil)
	copy(v.waiters[i+1:], v.waiters[i:])
	v.waiters[i] = w
}

// Advance moves the clock forward by d, firing every waiter whose
// deadline falls inside the window in deterministic order. Ticker
// deliveries are synchronous (see the type comment); After deliveries
// are buffered. Advance returns with the clock exactly d later.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.advMu.Lock()
	defer v.advMu.Unlock()

	v.mu.Lock()
	target := v.now.Add(d)
	for {
		if len(v.waiters) == 0 || v.waiters[0].deadline.After(target) {
			v.now = target
			v.mu.Unlock()
			return
		}
		w := v.waiters[0]
		v.waiters = v.waiters[1:]
		if v.now.Before(w.deadline) {
			v.now = w.deadline
		}
		v.mu.Unlock()

		if w.tk == nil {
			w.ch <- w.deadline
		} else {
			select {
			case w.tk.c <- w.deadline:
				v.mu.Lock()
				select {
				case <-w.tk.stop:
					// Stopped while handling the tick: do not re-arm.
				default:
					v.insertLocked(&waiter{deadline: w.deadline.Add(w.tk.period), seq: v.seq, tk: w.tk})
				}
				continue
			case <-w.tk.stop:
				// Stopped ticker: drop without re-arming.
			}
		}
		v.mu.Lock()
	}
}

// AdvanceTo moves the clock to an elapsed offset from its start; a
// no-op if the clock is already past it.
func (v *Virtual) AdvanceTo(elapsed time.Duration) {
	v.Advance(elapsed - v.Elapsed())
}

// StartWarp begins pacing the clock at factor virtual seconds per wall
// second from a background goroutine (factor 100 turns a 2000 s
// emulated run into 20 s of wall clock). The pacer calls Advance in
// small wall-time quanta, so delivery order within each quantum is
// still the deterministic queue order, but quantum boundaries depend
// on the scheduler — experiment harnesses that need exact
// reproducibility should drive Advance themselves instead. StartWarp
// panics if the factor is not positive or the clock is already
// warping.
func (v *Virtual) StartWarp(factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("clock: non-positive warp factor %v", factor))
	}
	v.mu.Lock()
	if v.warpStop != nil {
		v.mu.Unlock()
		panic("clock: StartWarp while already warping")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	v.warpStop, v.warpDone = stop, done
	v.mu.Unlock()

	go func() {
		defer close(done)
		const quantum = 2 * time.Millisecond // wall time between advances
		wallBase := time.Now()
		virtBase := v.Elapsed()
		for {
			select {
			case <-stop:
				return
			default:
			}
			time.Sleep(quantum)
			targetVirt := virtBase + time.Duration(factor*float64(time.Since(wallBase)))
			if dv := targetVirt - v.Elapsed(); dv > 0 {
				v.Advance(dv)
			}
		}
	}()
}

// StopWarp stops the pacer started by StartWarp and waits for it to
// exit. A no-op if no pacer is running.
func (v *Virtual) StopWarp() {
	v.mu.Lock()
	stop, done := v.warpStop, v.warpDone
	v.warpStop, v.warpDone = nil, nil
	v.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// vticker is Virtual's Ticker.
type vticker struct {
	v      *Virtual
	period time.Duration
	c      chan time.Time
	stop   chan struct{}
	once   sync.Once
}

func (t *vticker) C() <-chan time.Time { return t.c }

// Stop makes pending and future fires of this ticker no-ops and
// unblocks an Advance currently trying to deliver to it.
func (t *vticker) Stop() {
	t.once.Do(func() {
		close(t.stop)
		// Drop the armed waiter so Waiters() reflects live daemons only.
		t.v.mu.Lock()
		for i, w := range t.v.waiters {
			if w.tk == t {
				t.v.waiters = append(t.v.waiters[:i], t.v.waiters[i+1:]...)
				break
			}
		}
		t.v.mu.Unlock()
	})
}
