package calibrate

import (
	"fmt"
	"math"

	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/thermo"
	"github.com/darklab/mercury/internal/units"
)

// SteadyCase is one fixed-power configuration with reference
// steady-state temperatures, the shape of the Section 3.2 comparison
// against the CFD simulator.
type SteadyCase struct {
	// Powers overrides component power draws (by component name).
	Powers map[string]units.Watts
	// Want holds the reference steady temperatures (by node name).
	Want map[string]units.Celsius
}

// SteadyState computes a machine's steady-state node temperatures with
// fixed component powers, using the solver's analytic fixed point.
func SteadyState(m *model.Machine, powers map[string]units.Watts) (map[string]units.Celsius, error) {
	mm := m.Clone(m.Name)
	for i := range mm.Components {
		c := &mm.Components[i]
		if p, ok := powers[c.Name]; ok {
			c.Power = thermo.Constant(p)
			c.Util = model.UtilNone
		}
	}
	s, err := solver.NewSingle(mm, solver.Config{})
	if err != nil {
		return nil, err
	}
	return s.SteadyState(mm.Name)
}

// EvaluateSteady returns the RMSE and max absolute error of a
// machine's steady-state temperatures across the cases.
func EvaluateSteady(m *model.Machine, cases []SteadyCase) (rmse, maxAbs float64, err error) {
	var sumSq float64
	n := 0
	for ci, sc := range cases {
		temps, err := SteadyState(m, sc.Powers)
		if err != nil {
			return 0, 0, err
		}
		for node, want := range sc.Want {
			got, ok := temps[node]
			if !ok {
				return 0, 0, fmt.Errorf("calibrate: case %d references unknown node %q", ci, node)
			}
			d := float64(got - want)
			sumSq += d * d
			if a := math.Abs(d); a > maxAbs {
				maxAbs = a
			}
			n++
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("calibrate: steady cases have no targets")
	}
	return math.Sqrt(sumSq / float64(n)), maxAbs, nil
}

// CalibrateSteady fits params so the machine's steady states match the
// cases, using the same bounded coordinate descent as Calibrate.
func CalibrateSteady(base *model.Machine, cases []SteadyCase, params []Param, opts Options) (*model.Machine, Result, error) {
	opts = opts.withDefaults()
	if len(cases) == 0 {
		return nil, Result{}, fmt.Errorf("calibrate: no steady cases")
	}
	if len(params) == 0 {
		return nil, Result{}, fmt.Errorf("calibrate: no parameters")
	}
	for _, p := range params {
		if p.Min >= p.Max {
			return nil, Result{}, fmt.Errorf("calibrate: parameter %q has empty range [%v,%v]", p.Name, p.Min, p.Max)
		}
	}
	m := base.Clone(base.Name)
	res := Result{Params: map[string]float64{}}
	eval := func() (float64, float64, error) {
		res.Evals++
		return EvaluateSteady(m, cases)
	}
	best, _, err := eval()
	if err != nil {
		return nil, res, err
	}
	for round := 0; round < opts.Rounds; round++ {
		shrink := math.Pow(0.5, float64(round))
		for pi := range params {
			p := &params[pi]
			cur := p.Get(m)
			span := (p.Max - p.Min) * shrink
			lo := math.Max(p.Min, cur-span/2)
			hi := math.Min(p.Max, cur+span/2)
			bestV := cur
			for g := 0; g < opts.GridPoints; g++ {
				v := lo + (hi-lo)*float64(g)/float64(opts.GridPoints-1)
				p.Set(m, v)
				rmse, _, err := eval()
				if err != nil {
					return nil, res, err
				}
				if rmse < best {
					best, bestV = rmse, v
				}
			}
			p.Set(m, bestV)
		}
	}
	rmse, maxAbs, err := eval()
	if err != nil {
		return nil, res, err
	}
	res.RMSE, res.MaxAbs = rmse, maxAbs
	for _, p := range params {
		res.Params[p.Name] = p.Get(m)
	}
	if err := m.Validate(); err != nil {
		return nil, res, fmt.Errorf("calibrate: fitted machine invalid: %w", err)
	}
	return m, res, nil
}

// AnalogParam builds a Param over an analog machine's block heat
// constant (edge block -- block_air).
func AnalogParam(block string, min, max float64) Param {
	return heatKParam("k_"+block, block, block+"_air", min, max)
}
