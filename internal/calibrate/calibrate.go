// Package calibrate implements Mercury's calibration phase (Sections
// 2.2 and 3.1): "a single, isolated machine is tested as fully as
// possible, and then the heat- and air-flow constants are tuned until
// the emulated readings match the calibration experiment". The paper
// calibrated by hand in under an hour; this package automates the same
// fit with bounded coordinate descent, which needs no gradients and is
// deterministic.
package calibrate

import (
	"fmt"
	"math"
	"time"

	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/stats"
	"github.com/darklab/mercury/internal/thermo"
	"github.com/darklab/mercury/internal/trace"
	"github.com/darklab/mercury/internal/units"
)

// Param is one tunable scalar of a machine model, with bounds that keep
// the search physical.
type Param struct {
	Name     string
	Min, Max float64
	Get      func(m *model.Machine) float64
	Set      func(m *model.Machine, v float64)
}

// Target pairs a Mercury node with the measured series it should track.
type Target struct {
	Node     string
	Measured *stats.Series
}

// Options tunes the search.
type Options struct {
	// Rounds of coordinate descent; default 3.
	Rounds int
	// GridPoints per parameter per round; default 9.
	GridPoints int
	// SampleEvery controls how often the objective samples emulated
	// temperatures; default 10s.
	SampleEvery time.Duration
	// Step is the solver step used during fitting; default 1s.
	Step time.Duration
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	if o.GridPoints <= 1 {
		o.GridPoints = 9
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 10 * time.Second
	}
	if o.Step <= 0 {
		o.Step = time.Second
	}
	return o
}

// Result reports the fitted parameters and the residual error on the
// calibration data.
type Result struct {
	Params map[string]float64
	RMSE   float64
	MaxAbs float64
	Evals  int
}

// Calibrate fits params on a copy of base so that replaying the
// utilization trace reproduces the measured target series. It returns
// the fitted machine (base is not modified) and the residuals.
func Calibrate(base *model.Machine, tr *trace.Trace, targets []Target, params []Param, opts Options) (*model.Machine, Result, error) {
	opts = opts.withDefaults()
	if len(targets) == 0 {
		return nil, Result{}, fmt.Errorf("calibrate: no targets")
	}
	if len(params) == 0 {
		return nil, Result{}, fmt.Errorf("calibrate: no parameters")
	}
	for _, p := range params {
		if p.Min >= p.Max {
			return nil, Result{}, fmt.Errorf("calibrate: parameter %q has empty range [%v,%v]", p.Name, p.Min, p.Max)
		}
	}
	if tr.Duration() <= 0 {
		return nil, Result{}, fmt.Errorf("calibrate: empty utilization trace")
	}

	m := base.Clone(base.Name)
	res := Result{Params: map[string]float64{}}

	eval := func() (float64, float64, error) {
		res.Evals++
		return Evaluate(m, tr, targets, opts.SampleEvery, opts.Step)
	}

	best, _, err := eval()
	if err != nil {
		return nil, res, err
	}
	for round := 0; round < opts.Rounds; round++ {
		// The search interval shrinks around the incumbent each round.
		shrink := math.Pow(0.5, float64(round))
		for pi := range params {
			p := &params[pi]
			cur := p.Get(m)
			span := (p.Max - p.Min) * shrink
			lo := math.Max(p.Min, cur-span/2)
			hi := math.Min(p.Max, cur+span/2)
			bestV := cur
			for g := 0; g < opts.GridPoints; g++ {
				v := lo + (hi-lo)*float64(g)/float64(opts.GridPoints-1)
				p.Set(m, v)
				rmse, _, err := eval()
				if err != nil {
					return nil, res, err
				}
				if rmse < best {
					best, bestV = rmse, v
				}
			}
			p.Set(m, bestV)
		}
	}
	rmse, maxAbs, err := eval()
	if err != nil {
		return nil, res, err
	}
	res.RMSE = rmse
	res.MaxAbs = maxAbs
	for _, p := range params {
		res.Params[p.Name] = p.Get(m)
	}
	if err := m.Validate(); err != nil {
		return nil, res, fmt.Errorf("calibrate: fitted machine invalid: %w", err)
	}
	return m, res, nil
}

// Evaluate replays the trace on a fresh solver built from m and
// returns the pooled RMSE and maximum absolute error of the targets'
// emulated series against their measurements.
func Evaluate(m *model.Machine, tr *trace.Trace, targets []Target, sampleEvery, step time.Duration) (rmse, maxAbs float64, err error) {
	s, err := solver.NewSingle(m.Clone(m.Name), solver.Config{Step: step})
	if err != nil {
		return 0, 0, err
	}
	probes := make([]trace.Probe, len(targets))
	for i, t := range targets {
		probes[i] = trace.Probe{Machine: m.Name, Node: t.Node}
	}
	log, err := trace.Replay(s, tr, probes, sampleEvery)
	if err != nil {
		return 0, 0, err
	}
	emulated := map[string]*stats.Series{}
	for _, r := range log.Records {
		s, ok := emulated[r.Node]
		if !ok {
			s = stats.NewSeries(r.Node)
			emulated[r.Node] = s
		}
		s.Add(r.At, float64(r.Temp))
	}
	var sumSq float64
	var n int
	for _, t := range targets {
		em, ok := emulated[t.Node]
		if !ok {
			return 0, 0, fmt.Errorf("calibrate: no emulated samples for node %q", t.Node)
		}
		c := stats.CompareSeries(em, t.Measured)
		sumSq += c.RMSE * c.RMSE * float64(c.N)
		n += c.N
		if c.MaxAbs > maxAbs {
			maxAbs = c.MaxAbs
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("calibrate: targets have no comparable samples")
	}
	return math.Sqrt(sumSq / float64(n)), maxAbs, nil
}

// heatKParam builds a Param over a heat edge's k constant.
func heatKParam(name, a, b string, min, max float64) Param {
	find := func(m *model.Machine) *model.HeatEdge {
		for i := range m.HeatEdges {
			e := &m.HeatEdges[i]
			if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
				return e
			}
		}
		return nil
	}
	return Param{
		Name: name,
		Min:  min, Max: max,
		Get: func(m *model.Machine) float64 {
			if e := find(m); e != nil {
				return float64(e.K)
			}
			return 0
		},
		Set: func(m *model.Machine, v float64) {
			if e := find(m); e != nil {
				e.K = units.WattsPerKelvin(v)
			}
		},
	}
}

// linearPowerParam builds Params over a component's linear power
// endpoints.
func linearPowerParam(name, comp string, base bool, min, max float64) Param {
	return Param{
		Name: name,
		Min:  min, Max: max,
		Get: func(m *model.Machine) float64 {
			c := m.Component(comp)
			if c == nil {
				return 0
			}
			l, ok := c.Power.(thermo.Linear)
			if !ok {
				return 0
			}
			if base {
				return float64(l.PBase)
			}
			return float64(l.PMax)
		},
		Set: func(m *model.Machine, v float64) {
			c := m.Component(comp)
			if c == nil {
				return
			}
			l, ok := c.Power.(thermo.Linear)
			if !ok {
				return
			}
			if base {
				l.PBase = units.Watts(v)
				if l.PMax < l.PBase {
					l.PMax = l.PBase
				}
			} else {
				l.PMax = units.Watts(v)
				if l.PBase > l.PMax {
					l.PBase = l.PMax
				}
			}
			c.Power = l
		},
	}
}

// fanFlowParam tunes the machine's fan throughput.
func fanFlowParam(min, max float64) Param {
	return Param{
		Name: "fan_flow",
		Min:  min, Max: max,
		Get: func(m *model.Machine) float64 { return float64(m.FanFlow) },
		Set: func(m *model.Machine, v float64) { m.FanFlow = units.CubicFeetPerMinute(v) },
	}
}

// DefaultCPUParams returns the parameter set used to calibrate the
// validation server against the CPU microbenchmark (Figure 5): the
// CPU-side heat constants, CPU power endpoints, and fan flow.
func DefaultCPUParams() []Param {
	return []Param{
		heatKParam("k_cpu_air", model.NodeCPU, model.NodeCPUAir, 0.2, 3),
		heatKParam("k_mb_cpu", model.NodeMotherboard, model.NodeCPU, 0.01, 1),
		linearPowerParam("cpu_pbase", model.NodeCPU, true, 3, 15),
		linearPowerParam("cpu_pmax", model.NodeCPU, false, 15, 45),
		fanFlowParam(20, 60),
	}
}

// DefaultDiskParams returns the parameter set for the disk
// microbenchmark calibration (Figure 6).
func DefaultDiskParams() []Param {
	return []Param{
		heatKParam("k_platters_shell", model.NodeDiskPlatters, model.NodeDiskShell, 0.5, 5),
		heatKParam("k_shell_air", model.NodeDiskShell, model.NodeDiskAir, 0.5, 5),
		linearPowerParam("disk_pbase", model.NodeDiskPlatters, true, 4, 14),
		linearPowerParam("disk_pmax", model.NodeDiskPlatters, false, 9, 22),
	}
}
