package calibrate

import (
	"math"
	"testing"

	"github.com/darklab/mercury/internal/cfd"
	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/units"
)

func analogMachine(t *testing.T) *model.Machine {
	t.Helper()
	m, err := cfd.DefaultCase().MercuryAnalog("case2d")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSteadyStateRespectsPowers(t *testing.T) {
	m := analogMachine(t)
	low, err := SteadyState(m, map[string]units.Watts{"cpu": 7})
	if err != nil {
		t.Fatal(err)
	}
	high, err := SteadyState(m, map[string]units.Watts{"cpu": 31})
	if err != nil {
		t.Fatal(err)
	}
	if high["cpu"] <= low["cpu"] {
		t.Errorf("cpu at 31W (%v) not hotter than at 7W (%v)", high["cpu"], low["cpu"])
	}
	// Overriding the CPU leaves the (upstream, other-band) disk alone.
	if d := math.Abs(float64(high["disk"] - low["disk"])); d > 1e-6 {
		t.Errorf("disk moved %v when only CPU power changed", d)
	}
	// The original machine is untouched by the per-case overrides.
	if m.Component("cpu").Power.Max() != 7 {
		t.Errorf("SteadyState mutated its input machine")
	}
}

func TestEvaluateSteady(t *testing.T) {
	m := analogMachine(t)
	truth, err := SteadyState(m, map[string]units.Watts{"cpu": 19})
	if err != nil {
		t.Fatal(err)
	}
	cases := []SteadyCase{{
		Powers: map[string]units.Watts{"cpu": 19},
		Want:   map[string]units.Celsius{"cpu": truth["cpu"], "disk": truth["disk"]},
	}}
	rmse, maxAbs, err := EvaluateSteady(m, cases)
	if err != nil {
		t.Fatal(err)
	}
	if rmse != 0 || maxAbs != 0 {
		t.Errorf("self-evaluation rmse=%v max=%v, want 0", rmse, maxAbs)
	}
	// A biased target shows up in both metrics.
	cases[0].Want["cpu"] += 2
	rmse, maxAbs, err = EvaluateSteady(m, cases)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(maxAbs-2) > 1e-9 {
		t.Errorf("maxAbs = %v, want 2", maxAbs)
	}
	if rmse <= 0 || rmse > 2 {
		t.Errorf("rmse = %v", rmse)
	}
}

func TestEvaluateSteadyErrors(t *testing.T) {
	m := analogMachine(t)
	if _, _, err := EvaluateSteady(m, []SteadyCase{{
		Powers: map[string]units.Watts{"cpu": 19},
		Want:   map[string]units.Celsius{"ghost": 30},
	}}); err == nil {
		t.Error("unknown target node: want error")
	}
	if _, _, err := EvaluateSteady(m, []SteadyCase{{Powers: map[string]units.Watts{"cpu": 19}}}); err == nil {
		t.Error("no targets at all: want error")
	}
}

func TestCalibrateSteadyRecoversK(t *testing.T) {
	// Ground truth: the analog with known constants. Calibration from
	// default k=1 must recover temperatures (k itself may be slightly
	// off; temperatures are what we fit).
	truthMachine := analogMachine(t)
	if err := cfd.SetAnalogK(truthMachine, "cpu", 0.45); err != nil {
		t.Fatal(err)
	}
	if err := cfd.SetAnalogK(truthMachine, "disk", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := cfd.SetAnalogK(truthMachine, "ps", 0.6); err != nil {
		t.Fatal(err)
	}
	var cases []SteadyCase
	for _, cp := range []units.Watts{7, 19, 31} {
		powers := map[string]units.Watts{"cpu": cp, "disk": 11}
		truth, err := SteadyState(truthMachine, powers)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, SteadyCase{
			Powers: powers,
			Want: map[string]units.Celsius{
				"cpu": truth["cpu"], "disk": truth["disk"], "ps": truth["ps"],
			},
		})
	}
	params := []Param{
		AnalogParam("cpu", 0.1, 3),
		AnalogParam("disk", 0.1, 3),
		AnalogParam("ps", 0.1, 3),
	}
	fitted, res, err := CalibrateSteady(analogMachine(t), cases, params, Options{Rounds: 8, GridPoints: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbs > 0.2 {
		t.Errorf("fitted steady error = %v, want < 0.2C", res.MaxAbs)
	}
	for _, name := range []string{"k_cpu", "k_disk", "k_ps"} {
		if _, ok := res.Params[name]; !ok {
			t.Errorf("missing fitted %s", name)
		}
	}
	if err := fitted.Validate(); err != nil {
		t.Errorf("fitted machine invalid: %v", err)
	}
}

func TestCalibrateSteadyValidation(t *testing.T) {
	m := analogMachine(t)
	cases := []SteadyCase{{
		Powers: map[string]units.Watts{"cpu": 19},
		Want:   map[string]units.Celsius{"cpu": 40},
	}}
	params := []Param{AnalogParam("cpu", 0.1, 3)}
	if _, _, err := CalibrateSteady(m, nil, params, Options{}); err == nil {
		t.Error("no cases: want error")
	}
	if _, _, err := CalibrateSteady(m, cases, nil, Options{}); err == nil {
		t.Error("no params: want error")
	}
	bad := []Param{AnalogParam("cpu", 3, 3)}
	if _, _, err := CalibrateSteady(m, cases, bad, Options{}); err == nil {
		t.Error("empty range: want error")
	}
}

func TestAnalogParamMissingEdge(t *testing.T) {
	m := analogMachine(t)
	p := AnalogParam("ghost", 0.1, 3)
	if got := p.Get(m); got != 0 {
		t.Errorf("Get on missing edge = %v", got)
	}
	p.Set(m, 1.5) // must be a no-op, not a panic
}
