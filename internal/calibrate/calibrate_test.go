package calibrate

import (
	"testing"
	"time"

	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/physical"
	"github.com/darklab/mercury/internal/stats"
	"github.com/darklab/mercury/internal/trace"
	"github.com/darklab/mercury/internal/units"
	"github.com/darklab/mercury/internal/workload"
)

func TestCalibrationImprovesFit(t *testing.T) {
	machine := "server"
	ref := physical.NewRefServer(42)
	tr := workload.Square(machine, model.UtilCPU,
		[]units.Fraction{0.5, 1.0}, 900*time.Second, 500*time.Second)
	meas := ref.Replay(tr, 10*time.Second)
	base := model.DefaultServer(machine)
	targets := []Target{{Node: model.NodeCPUAir, Measured: meas.CPUAir}}

	preRMSE, _, err := Evaluate(base, tr, targets, 10*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fitted, res, err := Calibrate(base, tr, targets, DefaultCPUParams(), Options{Rounds: 2, GridPoints: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE > preRMSE {
		t.Errorf("calibration worsened fit: %v -> %v", preRMSE, res.RMSE)
	}
	if res.MaxAbs > 1.0 {
		t.Errorf("post-calibration max error = %v, want <= 1C", res.MaxAbs)
	}
	if res.Evals == 0 {
		t.Error("no evaluations recorded")
	}
	if err := fitted.Validate(); err != nil {
		t.Errorf("fitted machine invalid: %v", err)
	}
	// The input machine is untouched.
	if base.Component(model.NodeCPU).Power.Max() != 31 {
		t.Error("Calibrate mutated its input")
	}
	for _, name := range []string{"k_cpu_air", "cpu_pmax", "fan_flow"} {
		if _, ok := res.Params[name]; !ok {
			t.Errorf("missing fitted parameter %q", name)
		}
	}
}

func TestCalibratedModelGeneralizes(t *testing.T) {
	// The Figure 7 mechanic in miniature: calibrate on the CPU
	// microbenchmark, validate on a combined benchmark without
	// recalibration, expect ~1C accuracy.
	machine := "server"
	ref := physical.NewRefServer(42)
	cal := workload.Square(machine, model.UtilCPU,
		[]units.Fraction{0.25, 0.75, 1.0}, 900*time.Second, 400*time.Second)
	meas := ref.Replay(cal, 10*time.Second)
	fitted, _, err := Calibrate(model.DefaultServer(machine), cal,
		[]Target{{Node: model.NodeCPUAir, Measured: meas.CPUAir}},
		DefaultCPUParams(), Options{Rounds: 2, GridPoints: 7})
	if err != nil {
		t.Fatal(err)
	}

	vref := physical.NewRefServer(42)
	comb := workload.Combined(machine, 7, 2000*time.Second, 50*time.Second)
	vmeas := vref.Replay(comb, 10*time.Second)
	_, maxAbs, err := Evaluate(fitted, comb,
		[]Target{{Node: model.NodeCPUAir, Measured: vmeas.CPUAir}},
		10*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbs > 1.2 {
		t.Errorf("validation max error = %v, want about 1C", maxAbs)
	}
}

func TestCalibrateValidation(t *testing.T) {
	machine := "server"
	tr := workload.Square(machine, model.UtilCPU, []units.Fraction{1}, 100*time.Second, 100*time.Second)
	meas := stats.NewSeries("m")
	meas.Add(0, 21.6)
	meas.Add(100*time.Second, 25)
	base := model.DefaultServer(machine)
	tgt := []Target{{Node: model.NodeCPUAir, Measured: meas}}

	if _, _, err := Calibrate(base, tr, nil, DefaultCPUParams(), Options{}); err == nil {
		t.Error("no targets: want error")
	}
	if _, _, err := Calibrate(base, tr, tgt, nil, Options{}); err == nil {
		t.Error("no params: want error")
	}
	bad := DefaultCPUParams()
	bad[0].Min, bad[0].Max = 5, 5
	if _, _, err := Calibrate(base, tr, tgt, bad, Options{}); err == nil {
		t.Error("empty param range: want error")
	}
	if _, _, err := Calibrate(base, &trace.Trace{}, tgt, DefaultCPUParams(), Options{}); err == nil {
		t.Error("empty trace: want error")
	}
	if _, _, err := Evaluate(base, tr, []Target{{Node: "ghost", Measured: meas}}, 10*time.Second, time.Second); err == nil {
		t.Error("unknown node: want error")
	}
}

func TestDiskParams(t *testing.T) {
	m := model.DefaultServer("server")
	for _, p := range DefaultDiskParams() {
		v := p.Get(m)
		if v < p.Min || v > p.Max {
			t.Errorf("param %q default %v outside [%v,%v]", p.Name, v, p.Min, p.Max)
		}
		p.Set(m, p.Min)
		if got := p.Get(m); got != p.Min {
			t.Errorf("param %q set/get mismatch: %v", p.Name, got)
		}
	}
	if err := m.Validate(); err != nil {
		t.Errorf("machine invalid after param sets: %v", err)
	}
}

func TestPowerParamKeepsOrdering(t *testing.T) {
	m := model.DefaultServer("server")
	params := DefaultCPUParams()
	var pbase, pmax Param
	for _, p := range params {
		switch p.Name {
		case "cpu_pbase":
			pbase = p
		case "cpu_pmax":
			pmax = p
		}
	}
	// Forcing base above max must not create an invalid power model.
	pmax.Set(m, 20)
	pbase.Set(m, 15) // fine
	pbase.Set(m, 15)
	pmax.Set(m, 16)
	cpu := m.Component(model.NodeCPU)
	if cpu.Power.Base() > cpu.Power.Max() {
		t.Errorf("power ordering violated: %v > %v", cpu.Power.Base(), cpu.Power.Max())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("invalid after power params: %v", err)
	}
}
