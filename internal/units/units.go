// Package units defines typed physical quantities used throughout the
// Mercury suite. Distinct named types for temperature, power, energy,
// mass and heat capacity prevent accidental unit mix-ups in the thermal
// model; all are thin wrappers over float64 with explicit conversion
// helpers, so arithmetic stays cheap and allocation-free.
package units

import (
	"fmt"
	"math"
	"time"
)

// Celsius is a temperature on the Celsius scale. The Mercury solver and
// all user-visible interfaces (sensor library, fiddle) speak Celsius,
// matching the paper.
type Celsius float64

// Kelvin is an absolute temperature. Only temperature *differences*
// matter in Newton's law of cooling, so Kelvin appears mostly in
// derivations and in the CFD substrate.
type Kelvin float64

// AbsoluteZero is absolute zero expressed in Celsius.
const AbsoluteZero Celsius = -273.15

// Kelvin converts a Celsius temperature to Kelvin.
func (c Celsius) Kelvin() Kelvin { return Kelvin(float64(c) - float64(AbsoluteZero)) }

// Celsius converts a Kelvin temperature to Celsius.
func (k Kelvin) Celsius() Celsius { return Celsius(float64(k) + float64(AbsoluteZero)) }

// String renders the temperature with two decimals, e.g. "21.60C".
func (c Celsius) String() string { return fmt.Sprintf("%.2fC", float64(c)) }

// String renders the temperature with two decimals, e.g. "294.75K".
func (k Kelvin) String() string { return fmt.Sprintf("%.2fK", float64(k)) }

// Valid reports whether the temperature is a finite value at or above
// absolute zero.
func (c Celsius) Valid() bool {
	f := float64(c)
	return !math.IsNaN(f) && !math.IsInf(f, 0) && c >= AbsoluteZero
}

// Watts is power: energy transferred per unit time.
type Watts float64

// String renders the power with two decimals, e.g. "31.00W".
func (w Watts) String() string { return fmt.Sprintf("%.2fW", float64(w)) }

// Joules is energy (or heat, which is energy in transit).
type Joules float64

// String renders the energy with two decimals, e.g. "410.00J".
func (j Joules) String() string { return fmt.Sprintf("%.2fJ", float64(j)) }

// Energy returns the energy transferred by power w applied for d.
func (w Watts) Energy(d time.Duration) Joules {
	return Joules(float64(w) * d.Seconds())
}

// Over returns the average power that delivers energy j over d.
// It returns 0 for non-positive durations.
func (j Joules) Over(d time.Duration) Watts {
	s := d.Seconds()
	if s <= 0 {
		return 0
	}
	return Watts(float64(j) / s)
}

// Kilograms is mass.
type Kilograms float64

// String renders the mass with three decimals, e.g. "0.336kg".
func (m Kilograms) String() string { return fmt.Sprintf("%.3fkg", float64(m)) }

// JoulesPerKgK is specific heat capacity: the energy required to raise
// one kilogram of a material by one Kelvin.
type JoulesPerKgK float64

// String renders the heat capacity, e.g. "896.0J/(kg.K)".
func (c JoulesPerKgK) String() string { return fmt.Sprintf("%.1fJ/(kg.K)", float64(c)) }

// WattsPerKelvin is a lumped heat-transfer coefficient: the k constant
// of Equation 2 in the paper, which folds together the convective or
// conductive transfer coefficient and the contact surface area.
type WattsPerKelvin float64

// String renders the coefficient, e.g. "2.00W/K".
func (k WattsPerKelvin) String() string { return fmt.Sprintf("%.2fW/K", float64(k)) }

// Fraction is a dimensionless ratio in [0,1]: component utilization or
// an air-flow split fraction.
type Fraction float64

// Clamp returns f limited to the closed interval [0,1]. NaN clamps to 0.
func (f Fraction) Clamp() Fraction {
	if math.IsNaN(float64(f)) || f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Valid reports whether f is a finite value in [0,1].
func (f Fraction) Valid() bool {
	v := float64(f)
	return !math.IsNaN(v) && !math.IsInf(v, 0) && f >= 0 && f <= 1
}

// Percent returns the fraction scaled to [0,100].
func (f Fraction) Percent() float64 { return float64(f) * 100 }

// FromPercent converts a percentage in [0,100] to a Fraction.
func FromPercent(p float64) Fraction { return Fraction(p / 100) }

// String renders the fraction as a percentage, e.g. "42.0%".
func (f Fraction) String() string { return fmt.Sprintf("%.1f%%", f.Percent()) }

// CubicFeetPerMinute is a volumetric air-flow rate, the unit used by fan
// datasheets (and by Table 1 of the paper).
type CubicFeetPerMinute float64

// CubicMetersPerSecond converts the flow rate to SI units.
func (f CubicFeetPerMinute) CubicMetersPerSecond() float64 {
	const cubicFeetPerCubicMeter = 35.3146667
	return float64(f) / cubicFeetPerCubicMeter / 60
}

// String renders the flow, e.g. "38.60cfm".
func (f CubicFeetPerMinute) String() string { return fmt.Sprintf("%.2fcfm", float64(f)) }

// AirDensity is the density of air near room temperature, kg/m^3.
const AirDensity = 1.184

// AirSpecificHeat is the specific heat capacity of air at constant
// pressure near room temperature.
const AirSpecificHeat JoulesPerKgK = 1006

// AluminumSpecificHeat is the specific heat capacity the paper assumes
// for the disk drive components and the CPU heat sink.
const AluminumSpecificHeat JoulesPerKgK = 896

// FR4SpecificHeat is the specific heat capacity of FR4 circuit-board
// laminate, assumed for the motherboard.
const FR4SpecificHeat JoulesPerKgK = 1245
