package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCelsiusKelvinRoundTrip(t *testing.T) {
	f := func(c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		got := Celsius(c).Kelvin().Celsius()
		return math.Abs(float64(got)-c) < 1e-9*math.Max(1, math.Abs(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKelvinOffset(t *testing.T) {
	if got := Celsius(0).Kelvin(); math.Abs(float64(got)-273.15) > 1e-12 {
		t.Errorf("0C = %v, want 273.15K", got)
	}
	if got := Celsius(100).Kelvin(); math.Abs(float64(got)-373.15) > 1e-12 {
		t.Errorf("100C = %v, want 373.15K", got)
	}
}

func TestCelsiusValid(t *testing.T) {
	cases := []struct {
		c    Celsius
		want bool
	}{
		{21.6, true},
		{AbsoluteZero, true},
		{AbsoluteZero - 0.001, false},
		{Celsius(math.NaN()), false},
		{Celsius(math.Inf(1)), false},
		{Celsius(math.Inf(-1)), false},
	}
	for _, tc := range cases {
		if got := tc.c.Valid(); got != tc.want {
			t.Errorf("Celsius(%v).Valid() = %v, want %v", float64(tc.c), got, tc.want)
		}
	}
}

func TestWattsEnergy(t *testing.T) {
	if got := Watts(10).Energy(5 * time.Second); got != 50 {
		t.Errorf("10W for 5s = %v, want 50J", got)
	}
	if got := Watts(31).Energy(time.Millisecond); math.Abs(float64(got)-0.031) > 1e-12 {
		t.Errorf("31W for 1ms = %v, want 0.031J", got)
	}
}

func TestJoulesOver(t *testing.T) {
	if got := Joules(100).Over(4 * time.Second); got != 25 {
		t.Errorf("100J over 4s = %v, want 25W", got)
	}
	if got := Joules(100).Over(0); got != 0 {
		t.Errorf("100J over 0s = %v, want 0W", got)
	}
	if got := Joules(100).Over(-time.Second); got != 0 {
		t.Errorf("100J over -1s = %v, want 0W", got)
	}
}

func TestEnergyPowerRoundTrip(t *testing.T) {
	f := func(w float64, ms uint16) bool {
		if math.IsNaN(w) || math.IsInf(w, 0) || math.Abs(w) > 1e300 {
			return true
		}
		d := time.Duration(int(ms)+1) * time.Millisecond
		e := Watts(w).Energy(d)
		if math.IsInf(float64(e), 0) {
			return true // product overflowed float64; nothing to round-trip
		}
		got := e.Over(d)
		return math.Abs(float64(got)-w) <= 1e-9*math.Max(1, math.Abs(w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFractionClamp(t *testing.T) {
	cases := []struct {
		in, want Fraction
	}{
		{0.5, 0.5},
		{-0.1, 0},
		{1.5, 1},
		{0, 0},
		{1, 1},
		{Fraction(math.NaN()), 0},
	}
	for _, tc := range cases {
		if got := tc.in.Clamp(); got != tc.want {
			t.Errorf("Fraction(%v).Clamp() = %v, want %v", float64(tc.in), got, tc.want)
		}
	}
}

func TestFractionClampAlwaysValid(t *testing.T) {
	f := func(v float64) bool { return Fraction(v).Clamp().Valid() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFractionPercent(t *testing.T) {
	if got := Fraction(0.42).Percent(); math.Abs(got-42) > 1e-12 {
		t.Errorf("Percent = %v, want 42", got)
	}
	if got := FromPercent(42); math.Abs(float64(got)-0.42) > 1e-12 {
		t.Errorf("FromPercent(42) = %v, want 0.42", got)
	}
}

func TestCFMConversion(t *testing.T) {
	// 38.6 cfm (Table 1 fan) is about 0.01822 m^3/s.
	got := CubicFeetPerMinute(38.6).CubicMetersPerSecond()
	if math.Abs(got-0.018216) > 1e-4 {
		t.Errorf("38.6cfm = %v m^3/s, want about 0.0182", got)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Celsius(21.6).String(), "21.60C"},
		{Kelvin(294.75).String(), "294.75K"},
		{Watts(31).String(), "31.00W"},
		{Joules(410).String(), "410.00J"},
		{Kilograms(0.336).String(), "0.336kg"},
		{JoulesPerKgK(896).String(), "896.0J/(kg.K)"},
		{WattsPerKelvin(2).String(), "2.00W/K"},
		{Fraction(0.42).String(), "42.0%"},
		{CubicFeetPerMinute(38.6).String(), "38.60cfm"},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("String() = %q, want %q", tc.got, tc.want)
		}
	}
}

func TestMaterialConstants(t *testing.T) {
	// Paper Table 1 material assumptions.
	if AluminumSpecificHeat != 896 {
		t.Errorf("aluminum c = %v, want 896", AluminumSpecificHeat)
	}
	if FR4SpecificHeat != 1245 {
		t.Errorf("FR4 c = %v, want 1245", FR4SpecificHeat)
	}
	if AirSpecificHeat != 1006 {
		t.Errorf("air c = %v, want 1006", AirSpecificHeat)
	}
}
