// Package causal is the tracing layer that connects the hops of the
// thermal control loop: a monitord utilization sample, the 128-byte
// UDP update it becomes, the solverd apply and solver step, the sensor
// reads tempd issues, the PD controller's decision, admd's weight and
// connection actuation, and Freon-EC's power transitions. One trace ID
// links a thermal emergency's onset to every action it caused and to
// the recovery, which is what lets mercury-dash measure the paper's
// detect-to-actuate and detect-to-recover latencies end to end.
//
// Spans live in a fixed ring owned by a Tracer, mirroring
// telemetry.EventLog: emission is a mutex, an in-place ring store, and
// nothing else — no allocation, no channel sends. A nil *Tracer is a
// valid, always-disabled tracer; every method is nil-receiver safe so
// instrumented code pays one branch when tracing is off.
//
// Determinism is a hard requirement: the online lockstep harness
// (internal/online) runs with tracing enabled and asserts the span set
// is bit-identical across runs. Therefore nothing here draws from
// rand or the wall clock. Trace IDs hash the injected clock's elapsed
// time with the originating node's name; span IDs hash the span's own
// content. Ring sequence numbers are the only nondeterministic part
// (daemons emit concurrently within a lockstep phase), so Canonical
// returns spans in a content-derived order with Seq cleared — that is
// the form golden tests pin.
package causal

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/darklab/mercury/internal/clock"
)

// Kind classifies a span. Values are stable strings: they appear in
// /spans JSON, golden files, and Chrome trace exports.
type Kind string

// Span kinds, one per hop of the control loop.
const (
	KindSample      Kind = "sample"       // monitord reads its utilization sampler
	KindUtilApply   Kind = "util-apply"   // solverd applies a utilization update
	KindStep        Kind = "solver-step"  // one solver step of every machine
	KindSensorRead  Kind = "sensor-read"  // tempd reads one node via the sensor library
	KindSensorServe Kind = "sensor-serve" // solverd answers a sensor read
	KindRPC         Kind = "rpc"          // one udprpc request/reply exchange
	KindEmergency   Kind = "emergency"    // tempd crosses the high threshold (trace root)
	KindPDOutput    Kind = "pd-output"    // the PD controller's decision while hot
	KindWeight      Kind = "weight"       // admd changes an LVS weight
	KindConnCap     Kind = "conn-cap"     // admd caps a machine's connections
	KindClassBlock  Kind = "class-block"  // admd blocks a request class
	KindRelease     Kind = "release"      // admd releases all restrictions
	KindRedLine     Kind = "redline"      // traditional policy's hard shutdown
	KindRecovery    Kind = "recovery"     // all nodes back below the low threshold
	KindPowerOn     Kind = "power-on"     // Freon-EC boots a machine
	KindPowerOff    Kind = "power-off"    // Freon-EC powers a machine down
	KindDrain       Kind = "drain"        // Freon-EC begins draining a machine
)

// Span is one clock-stamped hop of a trace. Begin and End are
// durations since the tracer's construction, read from the injected
// clock; under clock.Virtual they are bit-identical across runs.
type Span struct {
	Seq     uint64        `json:"seq"` // ring sequence, the /spans?from= cursor
	Trace   uint64        `json:"trace"`
	ID      uint64        `json:"id"`
	Parent  uint64        `json:"parent,omitempty"`
	Kind    Kind          `json:"kind"`
	Begin   time.Duration `json:"begin_ns"`
	End     time.Duration `json:"end_ns"`
	Machine string        `json:"machine,omitempty"`
	Node    string        `json:"node,omitempty"` // thermal node, or admd's request class
	Value   float64       `json:"value,omitempty"`
	Step    uint64        `json:"step,omitempty"` // solver step count at emission
}

// String renders a span on one line, in the style of
// telemetry.Event.String — the form the Figure 11 trace golden pins.
// Seq is omitted (it is not deterministic); IDs print as fixed-width
// hex so the golden lines up.
func (s Span) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%gs %s trace=%016x id=%016x", s.Begin.Seconds(), s.Kind, s.Trace, s.ID)
	if s.Parent != 0 {
		fmt.Fprintf(&b, " parent=%016x", s.Parent)
	}
	if s.End > s.Begin {
		fmt.Fprintf(&b, " dur=%gs", (s.End - s.Begin).Seconds())
	}
	if s.Machine != "" {
		b.WriteString(" machine=" + s.Machine)
	}
	if s.Node != "" {
		b.WriteString(" node=" + s.Node)
	}
	if s.Value != 0 {
		b.WriteString(" value=" + strconv.FormatFloat(s.Value, 'g', -1, 64))
	}
	if s.Step != 0 {
		fmt.Fprintf(&b, " step=%d", s.Step)
	}
	return b.String()
}

// Context is the trace context that crosses process hops: it rides in
// the spare padding bytes of the 128-byte utilization update and in
// version-2 sensor datagrams (internal/wire).
type Context struct {
	Trace uint64
	Span  uint64
}

// Zero reports whether the context carries no trace.
func (c Context) Zero() bool { return c == Context{} }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	// Separator so ("ab","c") and ("a","bc") hash apart.
	h ^= 0xff
	h *= fnvPrime
	return h
}

// TraceID derives a trace identifier from a clock reading and the
// originating node's name. Distinct nodes starting traces at the same
// virtual instant get distinct IDs; the same node at the same instant
// gets the same ID on every run. Never zero (zero means "no trace").
func TraceID(at time.Duration, node string) uint64 {
	h := mixString(mix(fnvOffset, uint64(at)), node)
	if h == 0 {
		h = 1
	}
	return h
}

// SpanID derives a span identifier from the span's content (every
// field except Seq, ID, and End — those are unknown or unstable at
// the point a child needs its parent's ID). IDs must not come from a
// shared counter: daemons emit concurrently within a lockstep phase,
// so counter order — unlike content — is not deterministic. Step is
// included so catch-up solver steps sharing one virtual instant still
// get distinct IDs.
func SpanID(s *Span) uint64 {
	h := mix(fnvOffset, s.Trace)
	h = mix(h, s.Parent)
	h = mixString(h, string(s.Kind))
	h = mixString(h, s.Machine)
	h = mixString(h, s.Node)
	h = mix(h, uint64(s.Begin))
	h = mix(h, s.Step)
	h = mix(h, math.Float64bits(s.Value))
	if h == 0 {
		h = 1
	}
	return h
}

// Tracer records spans into a fixed ring. The zero of *Tracer (nil)
// is a disabled tracer: Emit, Now, and NewTrace are no-ops, so
// instrumented hot paths guard with a single nil check.
type Tracer struct {
	clk   clock.Clock
	epoch time.Time

	mu   sync.Mutex
	ring []Span
	next int    // ring slot for the next span
	n    int    // spans currently retained
	seq  uint64 // total spans ever emitted
	sink func(Span)
}

// NewTracer returns a tracer retaining the last capacity spans,
// stamped from clk (which must not be nil; pass clock.Real{} outside
// tests). If capacity <= 0 a default of 4096 is used.
func NewTracer(capacity int, clk clock.Clock) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{clk: clk, epoch: clk.Now(), ring: make([]Span, capacity)}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the tracer's clock reading as a duration since its
// construction, or 0 when disabled.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clk.Now().Sub(t.epoch)
}

// NewTrace starts a trace rooted at node, deriving the ID from the
// current clock reading. Returns 0 when disabled.
func (t *Tracer) NewTrace(node string) uint64 {
	if t == nil {
		return 0
	}
	return TraceID(t.Now(), node)
}

// Emit records a finished span and returns its ID. If s.ID is zero it
// is derived from the span's content via SpanID; if s.End precedes
// s.Begin it is clamped to s.Begin. No-op (returning 0) when
// disabled. Emit does not allocate.
func (t *Tracer) Emit(s Span) uint64 {
	if t == nil {
		return 0
	}
	if s.ID == 0 {
		s.ID = SpanID(&s)
	}
	if s.End < s.Begin {
		s.End = s.Begin
	}
	t.mu.Lock()
	t.seq++
	s.Seq = t.seq
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	if t.n < len(t.ring) {
		t.n++
	}
	if t.sink != nil {
		t.sink(s)
	}
	t.mu.Unlock()
	return s.ID
}

// SetSink installs a function called once per emitted span, after Seq
// and ID are assigned, under the tracer's lock so the sink observes
// strict sequence order. The flight recorder (internal/recordlog)
// hangs its durable capture here; the sink must never block. No-op on
// a disabled (nil) tracer. Pass nil to detach.
func (t *Tracer) SetSink(sink func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = sink
	t.mu.Unlock()
}

// Seq returns the sequence number of the most recent span (0 when none
// or disabled).
func (t *Tracer) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Since returns retained spans with Seq > after, oldest first. Spans
// older than the ring have been dropped silently — callers polling
// /spans?from= see the survivors, like EventLog.Since.
func (t *Tracer) Since(after uint64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 || t.seq <= after {
		return nil
	}
	want := t.seq - after
	if want > uint64(t.n) {
		want = uint64(t.n)
	}
	out := make([]Span, 0, want)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		s := t.ring[(start+i)%len(t.ring)]
		if s.Seq > after {
			out = append(out, s)
		}
	}
	return out
}

// Canonical returns every retained span with Seq cleared, sorted in a
// content-derived total order and deduplicated by full content.
// Concurrent emitters make ring order nondeterministic even under the
// virtual clock, so this is the form determinism tests compare and
// golden files pin. The dedup matters for horizontally sharded runs:
// every region's solverd emits the same content-derived step span for
// tick T, and collapsing those copies is exactly what makes an N-shard
// span set bit-identical to the single-solver golden.
func (t *Tracer) Canonical() []Span {
	spans := t.Since(0)
	for i := range spans {
		spans[i].Seq = 0
	}
	Sort(spans)
	out := spans[:0]
	for i := range spans {
		if i == 0 || spans[i] != spans[i-1] {
			out = append(out, spans[i])
		}
	}
	return out
}

// Sort orders spans by (Begin, Trace, Kind, Machine, Node, ID) — a
// total order over deterministic fields only.
func Sort(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := &spans[i], &spans[j]
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.ID < b.ID
	})
}
