package causal

import (
	"sync"
	"testing"
	"time"

	"github.com/darklab/mercury/internal/clock"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if got := tr.Now(); got != 0 {
		t.Fatalf("nil Now() = %v, want 0", got)
	}
	if got := tr.NewTrace("m1"); got != 0 {
		t.Fatalf("nil NewTrace() = %d, want 0", got)
	}
	if got := tr.Emit(Span{Kind: KindStep}); got != 0 {
		t.Fatalf("nil Emit() = %d, want 0", got)
	}
	if got := tr.Since(0); got != nil {
		t.Fatalf("nil Since() = %v, want nil", got)
	}
	if got := tr.Canonical(); got != nil {
		t.Fatalf("nil Canonical() = %v, want nil", got)
	}
	if tr.Seq() != 0 || tr.Len() != 0 {
		t.Fatal("nil Seq/Len nonzero")
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	tr := NewTracer(64, clock.Real{})
	s := Span{Trace: 7, Kind: KindStep, Machine: "machine1", Begin: time.Second}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Emit(s)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %v times per call, want 0", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(100, func() {
		nilTr.Emit(s)
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %v times per call, want 0", allocs)
	}
}

func TestDeterministicIDs(t *testing.T) {
	// Same clock reading + same node => same trace ID; different node
	// or instant => different.
	a := TraceID(5*time.Second, "machine1")
	b := TraceID(5*time.Second, "machine1")
	if a != b {
		t.Fatalf("TraceID not deterministic: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("TraceID returned 0")
	}
	if TraceID(5*time.Second, "machine2") == a {
		t.Fatal("distinct nodes collide")
	}
	if TraceID(6*time.Second, "machine1") == a {
		t.Fatal("distinct instants collide")
	}

	s := Span{Trace: a, Parent: 3, Kind: KindSensorRead, Machine: "machine1", Node: "cpu", Begin: time.Second}
	id1 := SpanID(&s)
	id2 := SpanID(&s)
	if id1 != id2 || id1 == 0 {
		t.Fatalf("SpanID not deterministic or zero: %d vs %d", id1, id2)
	}
	s2 := s
	s2.Kind = KindSensorServe
	if SpanID(&s2) == id1 {
		t.Fatal("distinct kinds collide")
	}
	// Concatenation boundary: ("ab","c") must differ from ("a","bc").
	x := Span{Machine: "ab", Node: "c"}
	y := Span{Machine: "a", Node: "bc"}
	if SpanID(&x) == SpanID(&y) {
		t.Fatal("string boundary collision")
	}
}

func TestRingSinceAndWraparound(t *testing.T) {
	clk := clock.NewVirtual()
	tr := NewTracer(4, clk)
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		tr.Emit(Span{Trace: uint64(i + 1), Kind: KindStep, Begin: tr.Now()})
	}
	if tr.Seq() != 10 {
		t.Fatalf("Seq = %d, want 10", tr.Seq())
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	// Seqs 1..6 fell off the ring: Since(2) returns the retained tail.
	got := tr.Since(2)
	if len(got) != 4 {
		t.Fatalf("Since(2) returned %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := uint64(7 + i); s.Seq != want {
			t.Fatalf("Since(2)[%d].Seq = %d, want %d", i, s.Seq, want)
		}
	}
	if got := tr.Since(9); len(got) != 1 || got[0].Seq != 10 {
		t.Fatalf("Since(9) = %+v, want exactly seq 10", got)
	}
	if got := tr.Since(10); got != nil {
		t.Fatalf("Since(10) = %+v, want nil", got)
	}
}

func TestEndClampedToBegin(t *testing.T) {
	tr := NewTracer(8, clock.Real{})
	tr.Emit(Span{Kind: KindSample, Begin: 5 * time.Second, End: time.Second})
	s := tr.Since(0)[0]
	if s.End != s.Begin {
		t.Fatalf("End = %v, want clamped to Begin %v", s.End, s.Begin)
	}
}

func TestCanonicalOrderIndependentOfEmitOrder(t *testing.T) {
	spans := []Span{
		{Trace: 2, Kind: KindPDOutput, Machine: "machine1", Begin: 2 * time.Second},
		{Trace: 1, Kind: KindSample, Machine: "machine2", Begin: time.Second},
		{Trace: 1, Kind: KindSample, Machine: "machine1", Begin: time.Second},
		{Trace: 2, Kind: KindEmergency, Machine: "machine1", Begin: 2 * time.Second},
	}
	emit := func(order []int) []Span {
		tr := NewTracer(16, clock.Real{})
		for _, i := range order {
			tr.Emit(spans[i])
		}
		return tr.Canonical()
	}
	a := emit([]int{0, 1, 2, 3})
	b := emit([]int{3, 2, 1, 0})
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("canonical[%d] differs:\n%+v\n%+v", i, a[i], b[i])
		}
		if a[i].Seq != 0 {
			t.Fatalf("canonical span retains Seq %d", a[i].Seq)
		}
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := NewTracer(1024, clock.Real{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(Span{Trace: uint64(g + 1), Kind: KindStep, Begin: time.Duration(i)})
				tr.Since(tr.Seq() / 2)
			}
		}(g)
	}
	wg.Wait()
	if tr.Seq() != 1600 {
		t.Fatalf("Seq = %d, want 1600", tr.Seq())
	}
	if tr.Len() != 1024 {
		t.Fatalf("Len = %d, want 1024", tr.Len())
	}
}

func TestVirtualClockStamps(t *testing.T) {
	clk := clock.NewVirtual()
	tr := NewTracer(8, clk)
	clk.Advance(3 * time.Second)
	if tr.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", tr.Now())
	}
	id := tr.Emit(Span{Trace: tr.NewTrace("machine1"), Kind: KindEmergency, Begin: tr.Now()})
	s := tr.Since(0)[0]
	if s.ID != id || s.Begin != 3*time.Second || s.Trace != TraceID(3*time.Second, "machine1") {
		t.Fatalf("span %+v does not match clock-derived ids", s)
	}
}
