package experiments

import (
	"fmt"
	"time"

	"github.com/darklab/mercury/internal/freon"
	"github.com/darklab/mercury/internal/lvs"
	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/stats"
	"github.com/darklab/mercury/internal/webcluster"
	"github.com/darklab/mercury/internal/workload"
)

// MultiTier is an extension experiment (the paper's Section 7: "Freon
// needs to be extended to deal with multi-tier services"): a two-tier
// service — web frontends and application backends, each tier behind
// its own balancer with its own Freon — shares one machine room. An
// inlet emergency hits a backend machine at t=600s; the backend Freon
// shifts its jobs to the other backends while the frontend tier stays
// untouched, and the service drops nothing end to end.
func MultiTier() (*Result, error) {
	const duration = 3000 * time.Second
	frontMachines := []string{"machine1", "machine2"}
	backMachines := []string{"machine3", "machine4", "machine5"}

	room, err := model.DefaultCluster("room", 5)
	if err != nil {
		return nil, err
	}
	sol, err := solver.New(room, solver.Config{})
	if err != nil {
		return nil, err
	}
	frontBal, backBal := lvs.New(), lvs.New()
	tt, err := webcluster.NewTwoTier(frontBal, backBal, frontMachines, backMachines, webcluster.TwoTierConfig{})
	if err != nil {
		return nil, err
	}
	frontFreon, err := freon.New(frontMachines, sol, frontBal, nil, freon.Config{})
	if err != nil {
		return nil, err
	}
	backFreon, err := freon.New(backMachines, sol, backBal, nil, freon.Config{})
	if err != nil {
		return nil, err
	}

	reqs := workload.GenerateWeb(workload.WebConfig{
		Duration:     duration,
		PeakRPS:      100,
		ValleyShare:  0.95,
		DynamicShare: 0.75,
		Seed:         3,
	})

	temps := map[string]*stats.Series{}
	for _, m := range append(append([]string(nil), frontMachines...), backMachines...) {
		temps[m] = stats.NewSeries(m)
	}

	idx := 0
	secs := int(duration / time.Second)
	for sec := 0; sec < secs; sec++ {
		if sec == 600 {
			if err := sol.PinInlet("machine3", 38.6); err != nil {
				return nil, err
			}
		}
		var batch []workload.Request
		limit := time.Duration(sec+1) * time.Second
		for idx < len(reqs) && reqs[idx].At < limit {
			batch = append(batch, reqs[idx])
			idx++
		}
		tick := tt.TickSecond(batch)
		feed := func(per map[string]webcluster.ServerTick) error {
			for m, st := range per {
				if err := sol.SetUtilization(m, model.UtilCPU, st.CPUUtil); err != nil {
					return err
				}
				if err := sol.SetUtilization(m, model.UtilDisk, st.DiskUtil); err != nil {
					return err
				}
			}
			return nil
		}
		if err := feed(tick.Front.PerServer); err != nil {
			return nil, err
		}
		if err := feed(tick.Back.PerServer); err != nil {
			return nil, err
		}
		sol.Step()
		if (sec+1)%5 == 0 {
			if err := frontFreon.TickPoll(); err != nil {
				return nil, err
			}
			if err := backFreon.TickPoll(); err != nil {
				return nil, err
			}
		}
		if (sec+1)%60 == 0 {
			if err := frontFreon.TickPeriod(); err != nil {
				return nil, err
			}
			if err := backFreon.TickPeriod(); err != nil {
				return nil, err
			}
		}
		if (sec+1)%10 == 0 {
			for m, series := range temps {
				temp, err := sol.Temperature(m, model.NodeCPU)
				if err != nil {
					return nil, err
				}
				series.Add(time.Duration(sec)*time.Second, float64(temp))
			}
		}
	}

	totals := tt.Totals()
	metrics := map[string]float64{
		"drop_rate":             totals.DropRate(),
		"backend_jobs":          float64(tt.BackendIssued()),
		"adjustments_machine3":  float64(backFreon.Admd().Adjustments("machine3")),
		"max_cpu_temp_machine3": temps["machine3"].Max(),
	}
	for _, m := range frontMachines {
		metrics["adjustments_"+m] = float64(frontFreon.Admd().Adjustments(m))
	}

	backSeries := []*stats.Series{temps["machine3"], temps["machine4"], temps["machine5"]}
	return &Result{
		Name: "multitier",
		Summary: fmt.Sprintf(
			"Extension: two-tier service (2 web + 3 app servers, per-tier Freon). Backend emergency at t=600s: "+
				"the backend Freon made %d adjustments on machine3 (max CPU %.1fC, red line 71C), the frontend tier "+
				"was untouched, and %.2f%% of %d requests were dropped end to end.",
			backFreon.Admd().Adjustments("machine3"), temps["machine3"].Max(),
			100*totals.DropRate(), totals.Arrived),
		Charts: []*stats.Chart{
			{Title: "Multi-tier: backend CPU temperatures (C)", Series: backSeries},
		},
		Metrics: metrics,
	}, nil
}
