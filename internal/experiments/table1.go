package experiments

import (
	"fmt"
	"time"

	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/sensor"
	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/solverd"
	"github.com/darklab/mercury/internal/stats"
)

// Table1 renders the paper's Table 1: the constants used in the
// validation and Freon studies, as encoded in the default server and
// cluster models.
func Table1() (*Result, error) {
	m := model.DefaultServer("server")

	comps := &stats.Table{
		Title:   "Table 1: component properties",
		Headers: []string{"component", "mass_kg", "specific_heat_J_per_kgK", "min_W", "max_W", "util_source"},
	}
	for _, c := range m.Components {
		min, max := "-", "-"
		if c.Power != nil {
			min = fmt.Sprintf("%g", float64(c.Power.Base()))
			max = fmt.Sprintf("%g", float64(c.Power.Max()))
		}
		comps.AddRow(c.Name, float64(c.Mass), float64(c.SpecificHeat), min, max, string(c.Util))
	}
	comps.AddRow("inlet temperature", float64(m.InletTemp), "-", "-", "-", "-")
	comps.AddRow("fan speed (cfm)", float64(m.FanFlow), "-", "-", "-", "-")

	heat := &stats.Table{
		Title:   "Table 1: heat-flow constants",
		Headers: []string{"from/to", "to/from", "k_W_per_K"},
	}
	for _, e := range m.HeatEdges {
		heat.AddRow(e.A, e.B, float64(e.K))
	}

	air := &stats.Table{
		Title:   "Table 1: intra-machine air fractions",
		Headers: []string{"from", "to", "fraction"},
	}
	for _, e := range m.AirEdges {
		air.AddRow(e.From, e.To, float64(e.Fraction))
	}

	c, err := model.DefaultCluster("room", 4)
	if err != nil {
		return nil, err
	}
	room := &stats.Table{
		Title:   "Table 1: inter-machine air fractions",
		Headers: []string{"from", "to", "fraction"},
	}
	for _, e := range c.Edges {
		room.AddRow(e.From, e.To, float64(e.Fraction))
	}

	return &Result{
		Name:    "table1",
		Summary: "Constants used in the validation and Freon studies (the paper's Table 1), as built by model.DefaultServer and model.DefaultCluster.",
		Tables:  []*stats.Table{comps, heat, air, room},
		Metrics: map[string]float64{
			"components": float64(len(m.Components)),
			"heat_edges": float64(len(m.HeatEdges)),
			"air_edges":  float64(len(m.AirEdges)),
			"room_edges": float64(len(c.Edges)),
			"inlet_temp": float64(m.InletTemp),
			"fan_speed":  float64(m.FanFlow),
		},
	}, nil
}

// Latency regenerates Section 2.3's microlatencies: the solver's
// per-iteration cost (the paper measured roughly 100 us per iteration
// on 2006 hardware) and the sensor library's read round trip over
// loopback UDP (the paper measured about 300 us, against 500 us for a
// real SCSI in-disk sensor). Looping enough iterations for stable
// averages, this is the quick-look variant of the Go benchmarks in
// bench_test.go.
func Latency() (*Result, error) {
	cluster, err := model.DefaultCluster("room", 4)
	if err != nil {
		return nil, err
	}
	sol, err := solver.New(cluster, solver.Config{})
	if err != nil {
		return nil, err
	}
	const iters = 20000
	start := time.Now()
	sol.StepN(iters)
	perIter := time.Since(start) / iters

	srv, err := solverd.Listen("127.0.0.1:0", sol)
	if err != nil {
		return nil, err
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()
	sd, err := sensor.Open(addr, "machine1", model.NodeCPU)
	if err != nil {
		return nil, err
	}
	defer sd.Close()
	const reads = 2000
	start = time.Now()
	for i := 0; i < reads; i++ {
		if _, err := sd.Read(); err != nil {
			return nil, err
		}
	}
	perRead := time.Since(start) / reads

	table := &stats.Table{
		Title:   "Section 2.3 microlatencies",
		Headers: []string{"operation", "measured", "paper"},
	}
	table.AddRow("solver iteration (4-machine room)", perIter.String(), "~100us")
	table.AddRow("readsensor() over loopback UDP", perRead.String(), "~300us (real SCSI sensor: ~500us)")

	return &Result{
		Name: "latency",
		Summary: fmt.Sprintf("Solver iteration: %v per step; sensor read: %v per UDP round trip.",
			perIter, perRead),
		Tables: []*stats.Table{table},
		Metrics: map[string]float64{
			"solver_iteration_us": float64(perIter.Nanoseconds()) / 1000,
			"sensor_read_us":      float64(perRead.Nanoseconds()) / 1000,
		},
	}, nil
}
