package experiments

import (
	"fmt"
	"os"
	"time"

	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/online"
	"github.com/darklab/mercury/internal/recordlog"
)

// replayDuration is long enough to include the t=480s inlet
// emergencies, so the capture carries fiddle ops and the thermal
// events they trigger, not just the steady util stream.
const replayDuration = 600 * time.Second

// ReplayRecorded is the flight-recorder regression scenario
// (docs/recordlog.md): run the online Figure 11 rig with a recorder
// attached, then re-drive a fresh solver from the capture on the
// virtual clock and demand bit-identical temperatures and events. Any
// drift anywhere in the capture → decode → replay pipeline — a lost
// input, a rounding change, a reordered apply — shows up as a
// mismatch and fails the scenario.
func ReplayRecorded() (*Result, error) {
	dir, err := os.MkdirTemp("", "mercury-replay")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	res, err := online.Run(online.Config{
		Duration: replayDuration,
		Script:   online.Fig11Script,
		Record:   dir,
	})
	if err != nil {
		return nil, err
	}
	log, err := recordlog.ReadLog(res.RecordPath)
	if err != nil {
		return nil, err
	}
	cm, err := model.DefaultCluster("room", 4)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := recordlog.Replay(log, cm, recordlog.ReplayConfig{})
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	if !rep.Identical() {
		return nil, fmt.Errorf("replay diverged from the recording: %d mismatches, first: %v",
			rep.MismatchCount(), rep.Mismatches)
	}

	return &Result{
		Name: "replay",
		Summary: fmt.Sprintf(
			"Recorded %v online Fig 11 run (%d events, %d temp rows, %d inputs, %d drops) "+
				"replayed bit-identical in %v: %d steps, %d/%d rows and %d/%d events matched.",
			replayDuration, len(log.Events), len(log.TempRows), len(log.Inputs), res.RecordDrops,
			wall.Round(time.Millisecond), rep.Steps,
			rep.RowsMatched, rep.RowsCompared, rep.EventsMatched, rep.EventsCompared),
		Metrics: map[string]float64{
			"steps":           float64(rep.Steps),
			"rows_compared":   float64(rep.RowsCompared),
			"rows_matched":    float64(rep.RowsMatched),
			"events_compared": float64(rep.EventsCompared),
			"events_matched":  float64(rep.EventsMatched),
			"utils_applied":   float64(rep.UtilsApplied),
			"fiddles_applied": float64(rep.FiddlesApplied),
			"mismatches":      float64(rep.MismatchCount()),
			"record_drops":    float64(res.RecordDrops),
		},
	}, nil
}
