// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections 3 and 5). Each experiment returns a
// Result holding rendered tables/charts plus machine-checkable
// metrics; the mercury-exp command prints them and the benchmark
// harness asserts their shapes.
package experiments

import (
	"fmt"
	"time"

	"github.com/darklab/mercury/internal/clock"
	"github.com/darklab/mercury/internal/fiddle"
	"github.com/darklab/mercury/internal/lvs"
	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/stats"
	"github.com/darklab/mercury/internal/webcluster"
	"github.com/darklab/mercury/internal/workload"
)

// Result is one regenerated experiment.
type Result struct {
	Name    string
	Summary string
	Tables  []*stats.Table
	Charts  []*stats.Chart
	// Metrics holds the headline numbers (drop rates, max errors,
	// temperatures) keyed by a stable name, for tests and
	// EXPERIMENTS.md.
	Metrics map[string]float64
}

// Render formats the full experiment output.
func (r *Result) Render() string {
	out := fmt.Sprintf("== %s ==\n%s\n", r.Name, r.Summary)
	for _, t := range r.Tables {
		out += "\n" + t.Render()
	}
	for _, c := range r.Charts {
		out += "\n" + c.Render()
	}
	if len(r.Metrics) > 0 {
		mt := &stats.Table{Title: "Metrics", Headers: []string{"metric", "value"}}
		for _, k := range sortedKeys(r.Metrics) {
			mt.AddRow(k, r.Metrics[k])
		}
		out += "\n" + mt.Render()
	}
	return out
}

// Sim couples the discrete-time web cluster with the Mercury solver
// and a thermal-management policy, advancing everything in lockstep
// emulated seconds: the cluster serves the second's arrivals, its
// utilizations feed the solver (as monitord would), the solver steps,
// and the policy's daemons run at their own periods.
type Sim struct {
	Solver  *solver.Solver
	Cluster *webcluster.Cluster
	Bal     *lvs.Balancer

	// Clock is the sim's virtual time source, shared with the online
	// harness's runtime: Run reads the current emulated instant from
	// it and advances it one second per iteration, so anything hung
	// off the same clock (tickers, After waiters) fires in lockstep
	// with the simulation. NewSim populates it; zero-value Sims get a
	// fresh clock on first Run.
	Clock *clock.Virtual

	// Requests is the full arrival trace.
	Requests []workload.Request
	// Fiddle is the scheduled emergency script.
	Fiddle []fiddle.TimedOp

	// OnPoll runs every PollEvery (default 5s): Freon's admd sampling.
	OnPoll func() error
	// OnPeriod runs every PeriodEvery (default 60s): tempd/admd cycle.
	OnPeriod func() error
	// OnSecond runs after every emulated second with the tick's stats;
	// experiments sample their series here.
	OnSecond func(sec int, tick webcluster.Tick) error

	PollEvery   time.Duration
	PeriodEvery time.Duration

	reqIdx    int
	fiddleIdx int
}

// NewSim builds the standard 4-machine rig: the Table 1 cluster, a
// fresh balancer-backed web cluster, and the Section 5 diurnal trace.
func NewSim(machines int, seed int64, duration time.Duration) (*Sim, error) {
	c, err := model.DefaultCluster("room", machines)
	if err != nil {
		return nil, err
	}
	// Workers: 0 shards stepping across all CPUs; temperatures are
	// bit-identical to the paper's serial loop for any worker count
	// (TestParallelDeterminism), so the regenerated figures are
	// unchanged.
	sol, err := solver.New(c, solver.Config{Workers: 0})
	if err != nil {
		return nil, err
	}
	bal := lvs.New()
	names := make([]string, machines)
	for i := range names {
		names[i] = fmt.Sprintf("machine%d", i+1)
	}
	wc, err := webcluster.New(bal, names, webcluster.Config{})
	if err != nil {
		return nil, err
	}
	// "The load peak is set at 70% utilization with 4 servers, leaving
	// spare capacity to handle unexpected load increases or a server
	// failure."
	peak := float64(machines) * 0.7 / webcluster.Config{}.MeanCPUPerRequest(0.3)
	reqs := workload.GenerateWeb(workload.WebConfig{
		Duration: duration,
		PeakRPS:  peak,
		Seed:     seed,
	})
	return &Sim{
		Solver:      sol,
		Cluster:     wc,
		Bal:         bal,
		Clock:       clock.NewVirtual(),
		Requests:    reqs,
		PollEvery:   5 * time.Second,
		PeriodEvery: time.Minute,
	}, nil
}

// Power returns a power actuator that switches both the emulated web
// server and its thermal model.
func (s *Sim) Power() PowerAdapter { return PowerAdapter{sim: s} }

// PowerAdapter implements freon.Power over the sim.
type PowerAdapter struct{ sim *Sim }

// SetPower turns the machine on/off in the web cluster and the solver.
func (p PowerAdapter) SetPower(machine string, on bool) error {
	if err := p.sim.Cluster.SetPower(machine, on); err != nil {
		return err
	}
	return p.sim.Solver.SetMachinePower(machine, on)
}

// Run advances the sim for the given emulated duration. Emulated time
// lives on s.Clock: each iteration handles the second starting at the
// clock's current instant and then advances it by one second, firing
// any tickers or timers other components have registered on the same
// clock.
func (s *Sim) Run(duration time.Duration) error {
	if s.Clock == nil {
		s.Clock = clock.NewVirtual()
	}
	secs := int(duration / time.Second)
	pollEvery := int(s.PollEvery / time.Second)
	periodEvery := int(s.PeriodEvery / time.Second)
	base := int(s.Clock.Elapsed() / time.Second)
	for i := 0; i < secs; i++ {
		sec := base + i
		now := s.Clock.Elapsed()

		for s.fiddleIdx < len(s.Fiddle) && s.Fiddle[s.fiddleIdx].At <= now {
			if err := fiddle.Apply(s.Solver, s.Fiddle[s.fiddleIdx].Op); err != nil {
				return fmt.Errorf("experiments: fiddle at %v: %w", now, err)
			}
			s.fiddleIdx++
		}

		limit := now + time.Second
		var batch []workload.Request
		for s.reqIdx < len(s.Requests) && s.Requests[s.reqIdx].At < limit {
			batch = append(batch, s.Requests[s.reqIdx])
			s.reqIdx++
		}
		tick := s.Cluster.TickSecond(batch)

		// Feed the tick's utilizations to the thermal model, the role
		// monitord plays on a live system.
		for _, m := range s.Cluster.Machines() {
			utils, err := s.Cluster.Utilizations(m)
			if err != nil {
				return err
			}
			for src, u := range utils {
				if err := s.Solver.SetUtilization(m, src, u); err != nil {
					return err
				}
			}
		}
		s.Solver.Step()

		if s.OnPoll != nil && pollEvery > 0 && (sec+1)%pollEvery == 0 {
			if err := s.OnPoll(); err != nil {
				return err
			}
		}
		if s.OnPeriod != nil && periodEvery > 0 && (sec+1)%periodEvery == 0 {
			if err := s.OnPeriod(); err != nil {
				return err
			}
		}
		if s.OnSecond != nil {
			if err := s.OnSecond(sec, tick); err != nil {
				return err
			}
		}
		s.Clock.Advance(time.Second)
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	return keys
}
