package experiments

import (
	"fmt"
	"time"

	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/stats"
)

// Recirc is an extension experiment (not a paper figure): it
// demonstrates the inter-machine air-flow machinery on the
// introduction's canonical emergency, "hot spots at the top sections
// of computer racks". Two racks of four machines run a uniform 60%
// load while a share of each machine's exhaust recirculates into the
// machine above it; the harness reports the per-height inlet and CPU
// temperatures and what happens when the AC set point rises.
func Recirc() (*Result, error) {
	const (
		racks   = 2
		perRack = 4
		util    = 0.6
	)
	c, err := model.RackCluster("room", racks, perRack, nil)
	if err != nil {
		return nil, err
	}
	s, err := solver.New(c, solver.Config{})
	if err != nil {
		return nil, err
	}
	for _, m := range s.Machines() {
		if err := s.SetUtilization(m, model.UtilCPU, util); err != nil {
			return nil, err
		}
		if err := s.SetUtilization(m, model.UtilDisk, util/3); err != nil {
			return nil, err
		}
	}
	s.Run(4 * time.Hour)

	table := &stats.Table{
		Title:   "Rack recirculation: steady temperatures by height (uniform 60% load)",
		Headers: []string{"height", "inlet_C", "cpu_C", "inlet_C_after_ac_27", "cpu_C_after_ac_27"},
	}
	type row struct{ inlet, cpu float64 }
	before := make([]row, perRack+1)
	for h := 1; h <= perRack; h++ {
		m := model.RackMachine(1, h)
		inlet, err := s.Temperature(m, model.NodeInlet)
		if err != nil {
			return nil, err
		}
		cpu, err := s.Temperature(m, model.NodeCPU)
		if err != nil {
			return nil, err
		}
		before[h] = row{inlet: float64(inlet), cpu: float64(cpu)}
	}

	// A degraded AC set point shifts the whole column up, hitting the
	// top of the rack hardest in absolute terms.
	if err := s.SetSourceTemperature(model.NodeAC, 27); err != nil {
		return nil, err
	}
	s.Run(4 * time.Hour)
	var topDelta float64
	for h := 1; h <= perRack; h++ {
		m := model.RackMachine(1, h)
		inlet, err := s.Temperature(m, model.NodeInlet)
		if err != nil {
			return nil, err
		}
		cpu, err := s.Temperature(m, model.NodeCPU)
		if err != nil {
			return nil, err
		}
		table.AddRow(h, before[h].inlet, before[h].cpu, float64(inlet), float64(cpu))
		if h == perRack {
			topDelta = float64(cpu) - before[h].cpu
		}
	}

	hotSpot := before[perRack].cpu - before[1].cpu
	return &Result{
		Name: "recirc",
		Summary: fmt.Sprintf(
			"Extension: intra-rack recirculation produces a %.1fC top-of-rack hot spot at uniform 60%% load; "+
				"degrading the AC to 27C lifts the top CPU another %.1fC. Regions (one per rack) are exactly the "+
				"blast radii Freon-EC's server selection avoids.",
			hotSpot, topDelta),
		Tables: []*stats.Table{table},
		Metrics: map[string]float64{
			"hot_spot_C":       hotSpot,
			"top_cpu_C":        before[perRack].cpu,
			"bottom_cpu_C":     before[1].cpu,
			"ac_degrade_delta": topDelta,
		},
	}, nil
}
