package experiments

import (
	"strings"
	"testing"
)

func run(t *testing.T, fn func() (*Result, error)) *Result {
	t.Helper()
	r, err := fn()
	if err != nil {
		t.Fatal(err)
	}
	if r.Name == "" || r.Summary == "" {
		t.Fatalf("incomplete result: %+v", r)
	}
	if out := r.Render(); !strings.Contains(out, r.Name) {
		t.Error("Render missing experiment name")
	}
	return r
}

func TestTable1(t *testing.T) {
	r := run(t, Table1)
	if r.Metrics["components"] != 5 {
		t.Errorf("components = %v, want 5", r.Metrics["components"])
	}
	if r.Metrics["heat_edges"] != 6 {
		t.Errorf("heat edges = %v, want 6", r.Metrics["heat_edges"])
	}
	if r.Metrics["air_edges"] != 12 {
		t.Errorf("air edges = %v, want 12", r.Metrics["air_edges"])
	}
	if r.Metrics["inlet_temp"] != 21.6 || r.Metrics["fan_speed"] != 38.6 {
		t.Errorf("inlet/fan = %v/%v", r.Metrics["inlet_temp"], r.Metrics["fan_speed"])
	}
	out := r.Render()
	for _, want := range []string{"disk_platters", "0.336", "cpu_air", "0.75", "cluster_exhaust"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestFig5CalibrationImproves(t *testing.T) {
	r := run(t, Fig5)
	pre, post := r.Metrics["pre_calibration_maxabs"], r.Metrics["post_calibration_maxabs"]
	if post > pre {
		t.Errorf("calibration worsened: %v -> %v", pre, post)
	}
	if post > 1.0 {
		t.Errorf("post-calibration max error %vC, want within 1C", post)
	}
	if r.Metrics["calibration_evals"] < 10 {
		t.Error("suspiciously few calibration evaluations")
	}
}

func TestFig6CalibrationImproves(t *testing.T) {
	r := run(t, Fig6)
	if r.Metrics["post_calibration_maxabs"] > 1.0 {
		t.Errorf("disk calibration max error = %v", r.Metrics["post_calibration_maxabs"])
	}
	if r.Metrics["post_calibration_maxabs"] > r.Metrics["pre_calibration_maxabs"] {
		t.Error("calibration worsened the disk fit")
	}
}

func TestFig7WithinOneDegree(t *testing.T) {
	// The paper's headline validation: "Mercury is able to emulate
	// temperatures within 1C at all times" on the combined benchmark.
	r := run(t, Fig7)
	if r.Metrics["validation_maxabs"] > 1.0 {
		t.Errorf("CPU air validation max error = %vC, want <= 1C", r.Metrics["validation_maxabs"])
	}
}

func TestFig8WithinOneDegree(t *testing.T) {
	r := run(t, Fig8)
	if r.Metrics["validation_maxabs"] > 1.0 {
		t.Errorf("disk validation max error = %vC, want <= 1C", r.Metrics["validation_maxabs"])
	}
}

func TestFluentAgreement(t *testing.T) {
	// Paper: within 0.32C (CPU) and 0.25C (disk) across 14 runs.
	r := run(t, Fluent)
	if r.Metrics["max_cpu_delta"] > 0.32 {
		t.Errorf("CPU delta = %v, want <= 0.32", r.Metrics["max_cpu_delta"])
	}
	if r.Metrics["max_disk_delta"] > 0.25 {
		t.Errorf("disk delta = %v, want <= 0.25", r.Metrics["max_disk_delta"])
	}
	if len(r.Tables) == 0 || len(r.Tables[0].Rows) != 14 {
		t.Error("fluent table should have 14 rows")
	}
}

func TestFig11FreonShape(t *testing.T) {
	r := run(t, Fig11)
	if r.Metrics["drop_rate"] != 0 {
		t.Errorf("Freon dropped %.3f%% of requests, paper served everything",
			100*r.Metrics["drop_rate"])
	}
	if r.Metrics["servers_shut_down"] != 0 {
		t.Error("Freon shut servers down; the whole point is not to")
	}
	// Hot machines crossed Th (67) but stayed under the red line (71).
	for _, m := range []string{"machine1", "machine3"} {
		max := r.Metrics["max_cpu_temp_"+m]
		if max < 67 || max >= 71 {
			t.Errorf("%s max CPU = %v, want in [67, 71)", m, max)
		}
		if r.Metrics["adjustments_"+m] == 0 {
			t.Errorf("%s received no load adjustments", m)
		}
	}
	// Unaffected machines stayed below Th.
	for _, m := range []string{"machine2", "machine4"} {
		if max := r.Metrics["max_cpu_temp_"+m]; max >= 67 {
			t.Errorf("%s max CPU = %v, want below Th", m, max)
		}
		if r.Metrics["adjustments_"+m] != 0 {
			t.Errorf("%s was adjusted without an emergency", m)
		}
	}
}

func TestTraditionalShape(t *testing.T) {
	r := run(t, Traditional)
	// Paper: machines 1 and 3 shut down; 14% of requests dropped. Our
	// substrate reproduces the shape: both emergency machines die and a
	// double-digit-ish share of the trace is lost.
	if r.Metrics["servers_shut_down"] != 2 {
		t.Errorf("servers shut down = %v, want 2", r.Metrics["servers_shut_down"])
	}
	dr := r.Metrics["drop_rate"]
	if dr < 0.05 || dr > 0.25 {
		t.Errorf("drop rate = %v, want around the paper's 0.14", dr)
	}
}

func TestFig12ECShape(t *testing.T) {
	r := run(t, Fig12)
	if r.Metrics["drop_rate"] != 0 {
		t.Errorf("Freon-EC dropped %.3f%% of requests", 100*r.Metrics["drop_rate"])
	}
	if r.Metrics["min_active_servers"] != 1 {
		t.Errorf("min active = %v, want 1 (deep valley shrink)", r.Metrics["min_active_servers"])
	}
	if r.Metrics["max_active_servers"] != 4 {
		t.Errorf("max active = %v, want 4 (peak)", r.Metrics["max_active_servers"])
	}
	if r.Metrics["turn_ons"] == 0 || r.Metrics["turn_offs"] == 0 {
		t.Error("no reconfigurations recorded")
	}
}

func TestECSavesEnergyVersusBase(t *testing.T) {
	base := run(t, Fig11)
	ec := run(t, Fig12)
	be, ee := base.Metrics["total_energy_joules"], ec.Metrics["total_energy_joules"]
	if ee >= be {
		t.Errorf("Freon-EC used %v J, base used %v J; EC must save energy", ee, be)
	}
	savings := (be - ee) / be
	if savings < 0.03 {
		t.Errorf("EC savings = %.1f%%, suspiciously small", savings*100)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Errorf("registered experiments = %d, want 13", len(names))
	}
	for _, e := range All() {
		if e.Name == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete registration: %+v", e.Name)
		}
	}
	if _, err := Run("ghost"); err == nil {
		t.Error("unknown experiment: want error")
	}
	r, err := Run("table1")
	if err != nil || r.Name != "table1" {
		t.Errorf("Run(table1) = %v, %v", r, err)
	}
}

func TestRecircShape(t *testing.T) {
	r := run(t, Recirc)
	if r.Metrics["hot_spot_C"] < 1 {
		t.Errorf("hot spot = %v, want a visible gradient", r.Metrics["hot_spot_C"])
	}
	if r.Metrics["top_cpu_C"] <= r.Metrics["bottom_cpu_C"] {
		t.Error("top of rack not hotter than bottom")
	}
	if r.Metrics["ac_degrade_delta"] < 4 {
		t.Errorf("AC degradation delta = %v, want >= ~5.4 (27-21.6)", r.Metrics["ac_degrade_delta"])
	}
}

func TestMultiTierShape(t *testing.T) {
	r := run(t, MultiTier)
	if r.Metrics["drop_rate"] != 0 {
		t.Errorf("multi-tier drop rate = %v", r.Metrics["drop_rate"])
	}
	if r.Metrics["adjustments_machine3"] == 0 {
		t.Error("backend Freon never adjusted the hot machine")
	}
	if r.Metrics["adjustments_machine1"] != 0 || r.Metrics["adjustments_machine2"] != 0 {
		t.Error("frontend tier was adjusted without an emergency")
	}
	if max := r.Metrics["max_cpu_temp_machine3"]; max < 67 || max >= 71 {
		t.Errorf("hot backend max = %v, want in [67, 71)", max)
	}
	if r.Metrics["backend_jobs"] == 0 {
		t.Error("no backend jobs issued")
	}
}

func TestReplayScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("records and replays a 600s online run; skipped in -short")
	}
	r := run(t, ReplayRecorded)
	if r.Metrics["mismatches"] != 0 {
		t.Errorf("replay mismatches = %v, want 0", r.Metrics["mismatches"])
	}
	if r.Metrics["steps"] != replayDuration.Seconds() {
		t.Errorf("replayed steps = %v, want %v", r.Metrics["steps"], replayDuration.Seconds())
	}
	if r.Metrics["fiddles_applied"] == 0 {
		t.Error("no fiddle ops in the capture; the t=480s emergencies should be recorded")
	}
	if r.Metrics["record_drops"] != 0 {
		t.Errorf("recorder dropped %v records during a healthy run", r.Metrics["record_drops"])
	}
}

func TestSimValidation(t *testing.T) {
	if _, err := NewSim(0, 1, freonDuration); err == nil {
		t.Error("zero machines: want error")
	}
	sim, err := NewSim(2, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sim.Cluster.Machines()); got != 2 {
		t.Errorf("machines = %d", got)
	}
}

func TestExperimentsAreRepeatable(t *testing.T) {
	// Mercury's headline property: "enables repeatable experiments".
	// Two independent runs of the same experiment must produce
	// bit-identical metrics — no wall-clock, randomness, or scheduling
	// leakage anywhere in the pipeline.
	for _, name := range []string{"fig11", "fig12", "trad"} {
		a, err := Run(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Metrics) != len(b.Metrics) {
			t.Fatalf("%s: metric sets differ", name)
		}
		for k, va := range a.Metrics {
			if vb, ok := b.Metrics[k]; !ok || va != vb {
				t.Errorf("%s: metric %s differs across runs: %v vs %v", name, k, va, vb)
			}
		}
	}
}
