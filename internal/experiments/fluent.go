package experiments

import (
	"fmt"
	"math"

	"github.com/darklab/mercury/internal/calibrate"
	"github.com/darklab/mercury/internal/cfd"
	"github.com/darklab/mercury/internal/stats"
	"github.com/darklab/mercury/internal/units"
)

// fluentCombos are the 14 (CPU, disk) power configurations of the
// Section 3.2 comparison: the CPU swept across its 7..31 W range and
// the disk across 9..14 W.
func fluentCombos() []struct{ CPU, Disk units.Watts } {
	var combos []struct{ CPU, Disk units.Watts }
	for _, cp := range []units.Watts{7, 13, 19, 25, 31} {
		for _, dp := range []units.Watts{9, 11.5, 14} {
			combos = append(combos, struct{ CPU, Disk units.Watts }{cp, dp})
		}
	}
	return combos[:14]
}

// Fluent regenerates the Section 3.2 validation: steady-state
// temperatures of the 2-D simulated server case across 14 fixed power
// configurations, comparing the fine-grained CFD solution against the
// calibrated Mercury analog. The paper reports agreement within 0.25 C
// for the disk and 0.32 C for the CPU.
func Fluent() (*Result, error) {
	c := cfd.DefaultCase()
	combos := fluentCombos()

	// Reference runs (the role of Fluent).
	type ref struct{ cpu, disk, ps units.Celsius }
	refs := make([]ref, len(combos))
	for i, cb := range combos {
		res, err := c.Solve(map[string]units.Watts{"cpu": cb.CPU, "disk": cb.Disk}, cfd.SolveOptions{})
		if err != nil {
			return nil, err
		}
		cpuT, err := res.BlockMean("cpu")
		if err != nil {
			return nil, err
		}
		diskT, err := res.BlockMean("disk")
		if err != nil {
			return nil, err
		}
		psT, err := res.BlockMean("ps")
		if err != nil {
			return nil, err
		}
		refs[i] = ref{cpu: cpuT, disk: diskT, ps: psT}
	}

	// Mercury's inputs are calibrated against three of the runs — the
	// corners and a middle point — standing in for the paper's "entering
	// these [Fluent-derived boundary] values as input".
	analog, err := c.MercuryAnalog("case2d")
	if err != nil {
		return nil, err
	}
	calIdx := []int{0, 7, 13}
	var cases []calibrate.SteadyCase
	for _, i := range calIdx {
		cases = append(cases, calibrate.SteadyCase{
			Powers: map[string]units.Watts{"cpu": combos[i].CPU, "disk": combos[i].Disk},
			Want:   map[string]units.Celsius{"cpu": refs[i].cpu, "disk": refs[i].disk, "ps": refs[i].ps},
		})
	}
	params := []calibrate.Param{
		calibrate.AnalogParam("cpu", 0.05, 3),
		calibrate.AnalogParam("disk", 0.05, 3),
		calibrate.AnalogParam("ps", 0.05, 3),
	}
	fitted, fitRes, err := calibrate.CalibrateSteady(analog, cases, params,
		calibrate.Options{Rounds: 8, GridPoints: 11})
	if err != nil {
		return nil, err
	}

	table := &stats.Table{
		Title:   "Section 3.2: Mercury vs CFD steady state, 14 power configurations",
		Headers: []string{"cpu_W", "disk_W", "cfd_cpu_C", "mercury_cpu_C", "cpu_delta_C", "cfd_disk_C", "mercury_disk_C", "disk_delta_C"},
	}
	var maxCPU, maxDisk float64
	for i, cb := range combos {
		temps, err := calibrate.SteadyState(fitted, map[string]units.Watts{"cpu": cb.CPU, "disk": cb.Disk})
		if err != nil {
			return nil, err
		}
		dCPU := float64(temps["cpu"] - refs[i].cpu)
		dDisk := float64(temps["disk"] - refs[i].disk)
		if a := math.Abs(dCPU); a > maxCPU {
			maxCPU = a
		}
		if a := math.Abs(dDisk); a > maxDisk {
			maxDisk = a
		}
		table.AddRow(float64(cb.CPU), float64(cb.Disk),
			float64(refs[i].cpu), float64(temps["cpu"]), dCPU,
			float64(refs[i].disk), float64(temps["disk"]), dDisk)
	}

	return &Result{
		Name: "fluent",
		Summary: fmt.Sprintf(
			"Mercury matched the CFD steady states within %.3fC (CPU) and %.3fC (disk) across 14 power configurations "+
				"after calibrating 3 heat constants on 3 of the runs (fit rmse %.3fC, %d evaluations). "+
				"The paper reports 0.32C and 0.25C against Fluent.",
			maxCPU, maxDisk, fitRes.RMSE, fitRes.Evals),
		Tables: []*stats.Table{table},
		Metrics: map[string]float64{
			"max_cpu_delta":  maxCPU,
			"max_disk_delta": maxDisk,
			"fit_rmse":       fitRes.RMSE,
			"fitted_k_cpu":   fitRes.Params["k_cpu"],
			"fitted_k_disk":  fitRes.Params["k_disk"],
			"fitted_k_ps":    fitRes.Params["k_ps"],
		},
	}, nil
}
