package experiments

import (
	"fmt"
	"time"

	"github.com/darklab/mercury/internal/calibrate"
	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/physical"
	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/stats"
	"github.com/darklab/mercury/internal/trace"
	"github.com/darklab/mercury/internal/workload"
)

// refSeed selects the canonical "physical unit" the Section 3.1
// validation measures against.
const refSeed = 42

// validationMachine is the machine name used in single-server runs.
const validationMachine = "server"

// CalibratedServer runs the full Section 3.1 calibration phase against
// the reference machine: the CPU microbenchmark fits the CPU-side
// constants (Figure 5), then the disk microbenchmark fits the
// disk-side constants (Figure 6), starting from the Table 1 inputs.
// The returned machine is the one the Figure 7/8 validations use
// without further adjustment.
func CalibratedServer() (*model.Machine, error) {
	base := model.DefaultServer(validationMachine)

	cpuTrace := workload.CPUCalibration(validationMachine)
	cpuMeas := physical.NewRefServer(refSeed).Replay(cpuTrace, 10*time.Second)
	fitted, _, err := calibrate.Calibrate(base, cpuTrace,
		[]calibrate.Target{{Node: model.NodeCPUAir, Measured: cpuMeas.CPUAir}},
		calibrate.DefaultCPUParams(), calibrate.Options{})
	if err != nil {
		return nil, err
	}

	diskTrace := workload.DiskCalibration(validationMachine)
	diskMeas := physical.NewRefServer(refSeed).Replay(diskTrace, 10*time.Second)
	fitted, _, err = calibrate.Calibrate(fitted, diskTrace,
		[]calibrate.Target{{Node: model.NodeDiskPlatters, Measured: diskMeas.Disk}},
		calibrate.DefaultDiskParams(), calibrate.Options{})
	if err != nil {
		return nil, err
	}
	return fitted, nil
}

// calibrationFigure runs one of the Figure 5/6 calibration
// experiments: replay the microbenchmark on the reference machine,
// fit Mercury, and chart utilization + measured + emulated series.
func calibrationFigure(name, title string, tr *trace.Trace, node string,
	measured *stats.Series, params []calibrate.Param, utilOf func(trace.Record) (float64, bool)) (*Result, error) {

	base := model.DefaultServer(validationMachine)
	targets := []calibrate.Target{{Node: node, Measured: measured}}

	preRMSE, preMax, err := calibrate.Evaluate(base, tr, targets, 10*time.Second, time.Second)
	if err != nil {
		return nil, err
	}
	fitted, res, err := calibrate.Calibrate(base, tr, targets, params, calibrate.Options{})
	if err != nil {
		return nil, err
	}

	// Emulated series from the fitted model.
	s, err := newSingleSolver(fitted)
	if err != nil {
		return nil, err
	}
	log, err := trace.Replay(s, tr, []trace.Probe{{Machine: validationMachine, Node: node}}, 10*time.Second)
	if err != nil {
		return nil, err
	}
	emulated := stats.NewSeries("emulated")
	for _, r := range log.Records {
		emulated.Add(r.At, float64(r.Temp))
	}
	util := stats.NewSeries("utilization (%)")
	for _, r := range tr.Records {
		if v, ok := utilOf(r); ok {
			util.Add(r.At, v*100)
		}
	}
	measured.Name = "measured"

	metrics := map[string]float64{
		"pre_calibration_rmse":    preRMSE,
		"pre_calibration_maxabs":  preMax,
		"post_calibration_rmse":   res.RMSE,
		"post_calibration_maxabs": res.MaxAbs,
		"calibration_evals":       float64(res.Evals),
	}
	for k, v := range res.Params {
		metrics["fitted_"+k] = v
	}
	return &Result{
		Name: name,
		Summary: fmt.Sprintf(
			"%s: calibration reduced the worst-case error from %.2fC to %.2fC (rmse %.3fC -> %.3fC) in %d solver replays.",
			title, preMax, res.MaxAbs, preRMSE, res.RMSE, res.Evals),
		Charts: []*stats.Chart{
			{Title: title + ": temperatures (C)", Series: []*stats.Series{emulated, measured}},
			{Title: title + ": driving utilization (%)", Series: []*stats.Series{util}, Height: 8},
		},
		Metrics: metrics,
	}, nil
}

// Fig5 regenerates Figure 5: calibrating Mercury for CPU usage and
// temperature against the reference machine's CPU-air thermometer.
func Fig5() (*Result, error) {
	tr := workload.CPUCalibration(validationMachine)
	meas := physical.NewRefServer(refSeed).Replay(tr, 10*time.Second)
	return calibrationFigure("fig5", "Figure 5 (CPU calibration)", tr,
		model.NodeCPUAir, meas.CPUAir, calibrate.DefaultCPUParams(),
		func(r trace.Record) (float64, bool) {
			return float64(r.Util), r.Source == model.UtilCPU
		})
}

// Fig6 regenerates Figure 6: the disk calibration.
func Fig6() (*Result, error) {
	tr := workload.DiskCalibration(validationMachine)
	meas := physical.NewRefServer(refSeed).Replay(tr, 10*time.Second)
	return calibrationFigure("fig6", "Figure 6 (disk calibration)", tr,
		model.NodeDiskPlatters, meas.Disk, calibrate.DefaultDiskParams(),
		func(r trace.Record) (float64, bool) {
			return float64(r.Util), r.Source == model.UtilDisk
		})
}

// validationFigure runs one of the Figure 7/8 experiments: the
// calibrated machine replays the combined benchmark "without adjusting
// any input parameters" and is compared against fresh measurements of
// the same workload.
func validationFigure(name, title, node string, pick func(*physical.Measurements) *stats.Series) (*Result, error) {
	fitted, err := CalibratedServer()
	if err != nil {
		return nil, err
	}
	tr := workload.Combined(validationMachine, 7, 5000*time.Second, 50*time.Second)
	meas := physical.NewRefServer(refSeed).Replay(tr, 10*time.Second)
	measured := pick(meas)

	rmse, maxAbs, err := calibrate.Evaluate(fitted, tr,
		[]calibrate.Target{{Node: node, Measured: measured}}, 10*time.Second, time.Second)
	if err != nil {
		return nil, err
	}
	s, err := newSingleSolver(fitted)
	if err != nil {
		return nil, err
	}
	log, err := trace.Replay(s, tr, []trace.Probe{{Machine: validationMachine, Node: node}}, 10*time.Second)
	if err != nil {
		return nil, err
	}
	emulated := stats.NewSeries("emulated")
	for _, r := range log.Records {
		emulated.Add(r.At, float64(r.Temp))
	}
	measured.Name = "measured"

	return &Result{
		Name: name,
		Summary: fmt.Sprintf(
			"%s: with no recalibration, Mercury tracked the challenging combined benchmark within %.2fC worst-case "+
				"(rmse %.3fC) — the paper reports accuracy within 1C.",
			title, maxAbs, rmse),
		Charts: []*stats.Chart{
			{Title: title + ": temperatures (C)", Series: []*stats.Series{emulated, measured}},
		},
		Metrics: map[string]float64{
			"validation_rmse":   rmse,
			"validation_maxabs": maxAbs,
		},
	}, nil
}

// Fig7 regenerates Figure 7: real-system CPU-air validation on the
// combined benchmark.
func Fig7() (*Result, error) {
	return validationFigure("fig7", "Figure 7 (CPU air validation)", model.NodeCPUAir,
		func(m *physical.Measurements) *stats.Series { return m.CPUAir })
}

// Fig8 regenerates Figure 8: real-system disk validation.
func Fig8() (*Result, error) {
	return validationFigure("fig8", "Figure 8 (disk validation)", model.NodeDiskPlatters,
		func(m *physical.Measurements) *stats.Series { return m.Disk })
}

func newSingleSolver(m *model.Machine) (*solver.Solver, error) {
	return solver.NewSingle(m.Clone(m.Name), solver.Config{})
}
