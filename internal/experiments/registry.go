package experiments

import (
	"fmt"
	"sort"
)

// Experiment is a registered, regenerable table or figure.
type Experiment struct {
	Name        string
	Description string
	Run         func() (*Result, error)
}

// All returns every experiment in evaluation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: constants used in the validation and Freon studies", Table1},
		{"fig5", "Figure 5: calibrating Mercury for CPU usage and temperature", Fig5},
		{"fig6", "Figure 6: calibrating Mercury for disk usage and temperature", Fig6},
		{"fig7", "Figure 7: real-system CPU air validation (combined benchmark, no recalibration)", Fig7},
		{"fig8", "Figure 8: real-system disk validation", Fig8},
		{"fluent", "Section 3.2: steady-state comparison against the 2-D CFD simulator (14 configurations)", Fluent},
		{"latency", "Section 2.3: solver iteration and readsensor() microlatencies", Latency},
		{"fig11", "Figure 11: Freon base policy under two inlet emergencies", Fig11},
		{"trad", "Section 5.1: traditional turn-off-at-red-line baseline (paper: 14% requests dropped)", Traditional},
		{"fig12", "Figure 12: Freon-EC combining energy conservation and thermal management", Fig12},
		{"recirc", "Extension: top-of-rack hot spots from intra-rack air recirculation", Recirc},
		{"multitier", "Extension: per-tier Freon managing a two-tier service under a backend emergency", MultiTier},
		{"replay", "Regression: online Fig 11 run captured by the flight recorder, replayed bit-identical at warp speed", ReplayRecorded},
	}
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by name.
func Run(name string) (*Result, error) {
	for _, e := range All() {
		if e.Name == name {
			return e.Run()
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
}
