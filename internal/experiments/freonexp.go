package experiments

import (
	"fmt"
	"time"

	"github.com/darklab/mercury/internal/fiddle"
	"github.com/darklab/mercury/internal/freon"
	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/stats"
	"github.com/darklab/mercury/internal/webcluster"
)

// Section 5 experiment constants.
const (
	freonSeed     = 1
	freonDuration = 2000 * time.Second
	emergencyAt   = 480 * time.Second
)

// emergencyScript reproduces the paper's Figure 4-style fiddle script:
// at 480 s, machine1's inlet rises to 38.6 C and machine3's to 35.6 C,
// lasting the rest of the experiment.
const emergencyScript = `#!/bin/bash
sleep 480
fiddle machine1 temperature inlet 38.6
fiddle machine3 temperature inlet 35.6
`

func emergencyOps() ([]fiddle.TimedOp, error) {
	script, err := fiddle.ParseScript(emergencyScript)
	if err != nil {
		return nil, err
	}
	return script.Schedule(), nil
}

// freonRun is the shared collection across the three Section 5
// experiments.
type freonRun struct {
	sim       *Sim
	temps     map[string]*stats.Series // CPU temperature per machine
	utils     map[string]*stats.Series // minute-average CPU utilization
	active    *stats.Series            // active server count (EC)
	utilAccum map[string]float64
	utilTicks int
	activeFn  func() int
}

func newFreonRun() (*freonRun, error) {
	sim, err := NewSim(4, freonSeed, freonDuration)
	if err != nil {
		return nil, err
	}
	ops, err := emergencyOps()
	if err != nil {
		return nil, err
	}
	sim.Fiddle = ops
	r := &freonRun{
		sim:       sim,
		temps:     map[string]*stats.Series{},
		utils:     map[string]*stats.Series{},
		active:    stats.NewSeries("active servers"),
		utilAccum: map[string]float64{},
	}
	for _, m := range sim.Cluster.Machines() {
		r.temps[m] = stats.NewSeries(m)
		r.utils[m] = stats.NewSeries(m)
	}
	sim.OnSecond = r.sample
	return r, nil
}

func (r *freonRun) sample(sec int, tick webcluster.Tick) error {
	at := time.Duration(sec) * time.Second
	for m, st := range tick.PerServer {
		r.utilAccum[m] += float64(st.CPUUtil)
	}
	r.utilTicks++
	if (sec+1)%10 == 0 {
		for m, s := range r.temps {
			temp, err := r.sim.Solver.Temperature(m, model.NodeCPU)
			if err != nil {
				return err
			}
			s.Add(at, float64(temp))
		}
	}
	if r.utilTicks == 60 {
		for m, s := range r.utils {
			s.Add(at, r.utilAccum[m]/60*100)
			r.utilAccum[m] = 0
		}
		r.utilTicks = 0
	}
	if r.activeFn != nil {
		r.active.Add(at, float64(r.activeFn()))
	}
	return nil
}

func (r *freonRun) charts(title string) []*stats.Chart {
	tempSeries := make([]*stats.Series, 0, 4)
	utilSeries := make([]*stats.Series, 0, 4)
	for _, m := range r.sim.Cluster.Machines() {
		tempSeries = append(tempSeries, r.temps[m])
		utilSeries = append(utilSeries, r.utils[m])
	}
	charts := []*stats.Chart{
		{Title: title + ": CPU temperatures (C)", Series: tempSeries},
		{Title: title + ": CPU utilizations (%, 1-minute averages)", Series: utilSeries},
	}
	if r.active.Len() > 0 {
		charts = append(charts, &stats.Chart{
			Title: title + ": active server count", Series: []*stats.Series{r.active}, Height: 8,
		})
	}
	return charts
}

func (r *freonRun) commonMetrics(metrics map[string]float64) {
	totals := r.sim.Cluster.Totals()
	metrics["requests_arrived"] = float64(totals.Arrived)
	metrics["requests_dropped"] = float64(totals.Dropped)
	metrics["drop_rate"] = totals.DropRate()
	metrics["total_energy_joules"] = float64(r.sim.Solver.TotalEnergy())
	for _, m := range r.sim.Cluster.Machines() {
		metrics["max_cpu_temp_"+m] = r.temps[m].Max()
	}
}

// Fig11 regenerates Figure 11: the base Freon policy handling the
// two-machine inlet emergency with load redistribution and no dropped
// requests.
func Fig11() (*Result, error) {
	run, err := newFreonRun()
	if err != nil {
		return nil, err
	}
	sim := run.sim
	fr, err := freon.New(sim.Cluster.Machines(), sim.Solver, sim.Bal, sim.Power(), freon.Config{})
	if err != nil {
		return nil, err
	}
	sim.OnPoll = fr.TickPoll
	sim.OnPeriod = fr.TickPeriod
	if err := sim.Run(freonDuration); err != nil {
		return nil, err
	}

	metrics := map[string]float64{}
	run.commonMetrics(metrics)
	for _, m := range sim.Cluster.Machines() {
		metrics["adjustments_"+m] = float64(fr.Admd().Adjustments(m))
	}
	metrics["servers_shut_down"] = float64(fr.OfflineCount())
	th := float64(freon.DefaultComponents()[0].High)
	metrics["cpu_high_threshold"] = th

	res := &Result{
		Name: "fig11",
		Summary: fmt.Sprintf(
			"Freon base policy: emergencies at %v (machine1 inlet 38.6C, machine3 35.6C). "+
				"Freon reduced the hot servers' load (%d/%d weight adjustments on machines 1/3), kept every CPU near Th=%.0fC, "+
				"shut down %d servers, and dropped %.2f%% of requests.",
			emergencyAt, fr.Admd().Adjustments("machine1"), fr.Admd().Adjustments("machine3"), th,
			fr.OfflineCount(), 100*metrics["drop_rate"]),
		Charts:  run.charts("Figure 11"),
		Metrics: metrics,
	}
	return res, nil
}

// Traditional regenerates the Section 5.1 baseline: no load shifting,
// servers shut down at the red line; the paper measures 14% of
// requests dropped.
func Traditional() (*Result, error) {
	run, err := newFreonRun()
	if err != nil {
		return nil, err
	}
	sim := run.sim
	tr, err := freon.NewTraditional(sim.Cluster.Machines(), sim.Solver, sim.Bal, sim.Power(), freon.Config{})
	if err != nil {
		return nil, err
	}
	sim.OnPeriod = tr.TickPeriod
	if err := sim.Run(freonDuration); err != nil {
		return nil, err
	}
	metrics := map[string]float64{}
	run.commonMetrics(metrics)
	metrics["servers_shut_down"] = float64(len(tr.OfflineMachines()))

	res := &Result{
		Name: "trad",
		Summary: fmt.Sprintf(
			"Traditional policy: servers shut down on red-line. %d servers went down (%v) and %.1f%% of requests were dropped "+
				"(the paper measured 14%%).",
			len(tr.OfflineMachines()), tr.OfflineMachines(), 100*metrics["drop_rate"]),
		Charts:  run.charts("Traditional policy"),
		Metrics: metrics,
	}
	return res, nil
}

// Fig12 regenerates Figure 12: Freon-EC conserving energy by shrinking
// the active configuration at low load while still managing the
// emergencies at the peak.
func Fig12() (*Result, error) {
	run, err := newFreonRun()
	if err != nil {
		return nil, err
	}
	sim := run.sim
	// "we grouped machines 1 and 3 in region 0 and the others in
	// region 1."
	regions := map[string]int{"machine1": 0, "machine3": 0, "machine2": 1, "machine4": 1}
	ec, err := freon.NewEC(sim.Cluster.Machines(), sim.Solver, sim.Solver, sim.Bal, sim.Power(),
		freon.ECConfig{Regions: regions})
	if err != nil {
		return nil, err
	}
	run.activeFn = ec.ActiveCount
	sim.OnPoll = ec.TickPoll
	sim.OnPeriod = ec.TickPeriod
	if err := sim.Run(freonDuration); err != nil {
		return nil, err
	}
	metrics := map[string]float64{}
	run.commonMetrics(metrics)
	metrics["min_active_servers"] = run.active.Min()
	metrics["max_active_servers"] = run.active.Max()
	metrics["turn_ons"] = float64(ec.TurnOns())
	metrics["turn_offs"] = float64(ec.TurnOffs())

	res := &Result{
		Name: "fig12",
		Summary: fmt.Sprintf(
			"Freon-EC: active configuration ranged %d..%d servers (%d turn-ons, %d turn-offs), total energy %.0f kJ, "+
				"%.2f%% of requests dropped.",
			int(run.active.Min()), int(run.active.Max()), ec.TurnOns(), ec.TurnOffs(),
			metrics["total_energy_joules"]/1000, 100*metrics["drop_rate"]),
		Charts:  run.charts("Figure 12"),
		Metrics: metrics,
	}
	return res, nil
}
