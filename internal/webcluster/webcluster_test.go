package webcluster

import (
	"math"
	"testing"
	"time"

	"github.com/darklab/mercury/internal/lvs"
	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/workload"
)

func newCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = machineName(i)
	}
	c, err := New(lvs.New(), names, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func machineName(i int) string {
	return []string{"machine1", "machine2", "machine3", "machine4", "machine5"}[i]
}

func burst(n int, dynamic bool) []workload.Request {
	reqs := make([]workload.Request, n)
	for i := range reqs {
		reqs[i] = workload.Request{At: time.Duration(i), Dynamic: dynamic}
	}
	return reqs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(lvs.New(), nil, Config{}); err == nil {
		t.Error("no machines: want error")
	}
	if _, err := New(lvs.New(), []string{"a", "a"}, Config{}); err == nil {
		t.Error("duplicate machines: want error")
	}
}

func TestUtilizationMatchesLoad(t *testing.T) {
	c := newCluster(t, 1)
	// 20 dynamic requests at 25ms = 500ms of CPU: 50% utilization.
	tick := c.TickSecond(burst(20, true))
	st := tick.PerServer["machine1"]
	if math.Abs(float64(st.CPUUtil)-0.5) > 1e-9 {
		t.Errorf("cpu util = %v, want 0.50", st.CPUUtil)
	}
	if st.Completed != 20 || st.Conns != 0 {
		t.Errorf("completed=%d conns=%d", st.Completed, st.Conns)
	}
	// Static requests exercise the disk: 50 static = 100ms cpu, 400ms disk.
	tick = c.TickSecond(burst(50, false))
	st = tick.PerServer["machine1"]
	if math.Abs(float64(st.CPUUtil)-0.1) > 1e-9 {
		t.Errorf("cpu util = %v, want 0.10", st.CPUUtil)
	}
	if math.Abs(float64(st.DiskUtil)-0.4) > 1e-9 {
		t.Errorf("disk util = %v, want 0.40", st.DiskUtil)
	}
}

func TestOverloadQueuesAndCarriesOver(t *testing.T) {
	c := newCluster(t, 1)
	// 60 dynamic requests = 1.5s of work: one second's worth completes,
	// the rest stays queued.
	tick := c.TickSecond(burst(60, true))
	st := tick.PerServer["machine1"]
	if st.CPUUtil < 0.999 {
		t.Errorf("cpu util = %v, want saturated", st.CPUUtil)
	}
	if st.Conns == 0 || st.Completed >= 60 {
		t.Errorf("expected backlog: completed=%d conns=%d", st.Completed, st.Conns)
	}
	// Next tick with no arrivals drains the backlog.
	tick = c.TickSecond(nil)
	st = tick.PerServer["machine1"]
	if st.Conns != 0 {
		t.Errorf("backlog not drained: %d", st.Conns)
	}
	if c.Totals().Completed != 60 {
		t.Errorf("total completed = %d", c.Totals().Completed)
	}
}

func TestQueueCapDrops(t *testing.T) {
	c, err := New(lvs.New(), []string{"machine1"}, Config{QueueCap: 10})
	if err != nil {
		t.Fatal(err)
	}
	tick := c.TickSecond(burst(200, true))
	if tick.Dropped == 0 {
		t.Error("queue cap did not drop anything")
	}
	if got := c.Totals().DropRate(); got == 0 {
		t.Error("drop rate = 0")
	}
	// Balancer connection accounting stayed consistent.
	conns, _ := c.Balancer().ActiveConns("machine1")
	queued, _ := c.Conns("machine1")
	if conns != queued {
		t.Errorf("balancer conns %d != queue %d", conns, queued)
	}
}

func TestLoadSpreadsAcrossServers(t *testing.T) {
	c := newCluster(t, 4)
	tick := c.TickSecond(burst(80, true))
	for _, name := range c.Machines() {
		st := tick.PerServer[name]
		// 80 requests x 25ms over 4 servers = 0.5 each.
		if math.Abs(float64(st.CPUUtil)-0.5) > 0.1 {
			t.Errorf("%s cpu = %v, want ~0.5", name, st.CPUUtil)
		}
	}
}

func TestWeightShiftsUtilization(t *testing.T) {
	c := newCluster(t, 2)
	c.Balancer().SetWeight("machine1", 0.2)
	var u1, u2 float64
	for i := 0; i < 10; i++ {
		tick := c.TickSecond(burst(40, true))
		u1 += float64(tick.PerServer["machine1"].CPUUtil)
		u2 += float64(tick.PerServer["machine2"].CPUUtil)
	}
	if u1 >= u2*0.5 {
		t.Errorf("deweighted server still loaded: %v vs %v", u1, u2)
	}
}

func TestPowerOffDropsQueueAndRefuses(t *testing.T) {
	c := newCluster(t, 2)
	c.TickSecond(burst(100, true)) // build backlog
	before := c.Totals().Dropped
	if err := c.SetPower("machine1", false); err != nil {
		t.Fatal(err)
	}
	if on, _ := c.On("machine1"); on {
		t.Error("still on")
	}
	if c.Totals().Dropped <= before {
		t.Error("queued requests not counted as dropped on power-off")
	}
	if conns, _ := c.Balancer().ActiveConns("machine1"); conns != 0 {
		t.Errorf("balancer conns = %d after power-off", conns)
	}
	// Off server picked by the balancer refuses requests (caller is
	// expected to quiesce; this is the safety net).
	tick := c.TickSecond(burst(10, true))
	if tick.PerServer["machine1"].CPUUtil != 0 {
		t.Error("off server did work")
	}
	// Power back on.
	if err := c.SetPower("machine1", true); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPower("ghost", true); err == nil {
		t.Error("unknown machine: want error")
	}
}

func TestQuiescedServerDrains(t *testing.T) {
	c := newCluster(t, 2)
	c.TickSecond(burst(90, true)) // ~1.1s of work each
	c.Balancer().Quiesce("machine1")
	c.TickSecond(nil)
	c.TickSecond(nil)
	if conns, _ := c.Conns("machine1"); conns != 0 {
		t.Errorf("quiesced server did not drain: %d conns", conns)
	}
	// All later requests go to machine2.
	tick := c.TickSecond(burst(10, true))
	if tick.PerServer["machine1"].Assigned != 0 {
		t.Error("quiesced server got assignments")
	}
}

func TestUtilizationsAccessor(t *testing.T) {
	c := newCluster(t, 1)
	c.TickSecond(burst(20, true))
	utils, err := c.Utilizations("machine1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(utils[model.UtilCPU])-0.5) > 1e-9 {
		t.Errorf("cpu = %v", utils[model.UtilCPU])
	}
	if _, err := c.Utilizations("ghost"); err == nil {
		t.Error("unknown machine: want error")
	}
	if _, err := c.Conns("ghost"); err == nil {
		t.Error("unknown machine: want error")
	}
	if _, err := c.On("ghost"); err == nil {
		t.Error("unknown machine: want error")
	}
}

func TestMeanCPUPerRequest(t *testing.T) {
	got := Config{}.MeanCPUPerRequest(0.3)
	want := 0.3*0.025 + 0.7*0.002
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("mean cpu = %v, want %v", got, want)
	}
}

func TestFullTraceThroughput(t *testing.T) {
	// A full diurnal trace sized for ~70% peak on 4 servers must be
	// served without drops when nothing interferes (the Figure 11
	// baseline property).
	c := newCluster(t, 4)
	cfg := workload.WebConfig{
		Duration: 2000 * time.Second,
		PeakRPS:  4 * 0.7 / Config{}.MeanCPUPerRequest(0.3),
		Seed:     1,
	}
	reqs := workload.GenerateWeb(cfg)
	idx := 0
	var peakMinute float64 // highest one-minute average utilization
	var windowSum float64
	windowTicks := 0
	for s := 0; s < 2000; s++ {
		var batch []workload.Request
		limit := time.Duration(s+1) * time.Second
		for idx < len(reqs) && reqs[idx].At < limit {
			batch = append(batch, reqs[idx])
			idx++
		}
		tick := c.TickSecond(batch)
		var tickAvg float64
		for _, st := range tick.PerServer {
			tickAvg += float64(st.CPUUtil)
		}
		windowSum += tickAvg / 4
		windowTicks++
		if windowTicks == 60 {
			if avg := windowSum / 60; avg > peakMinute {
				peakMinute = avg
			}
			windowSum, windowTicks = 0, 0
		}
	}
	totals := c.Totals()
	if totals.Dropped != 0 {
		t.Errorf("dropped %d of %d requests with full capacity", totals.Dropped, totals.Arrived)
	}
	// The paper sets "the load peak ... at 70% utilization with 4
	// servers"; utilization is the minute-averaged quantity Freon sees.
	if peakMinute < 0.6 || peakMinute > 0.8 {
		t.Errorf("peak minute-average util = %v, want around 0.7", peakMinute)
	}
}

func TestSetSpeedThrottlesService(t *testing.T) {
	c := newCluster(t, 1)
	if err := c.SetSpeed("machine1", 0.5); err != nil {
		t.Fatal(err)
	}
	if sp, _ := c.Speed("machine1"); sp != 0.5 {
		t.Errorf("Speed = %v", sp)
	}
	// 30 dynamic requests = 750ms of work; at half speed only ~375ms
	// worth completes in a second and the rest queues.
	tick := c.TickSecond(burst(30, true))
	st := tick.PerServer["machine1"]
	if st.Conns == 0 {
		t.Error("half-speed server should have a backlog")
	}
	if st.Completed >= 30 {
		t.Errorf("completed %d of 30 at half speed", st.Completed)
	}
	// Utilization reports busy *time*, which saturates at 1.
	if st.CPUUtil < 0.999 {
		t.Errorf("cpu util = %v, want saturated", st.CPUUtil)
	}
	// Restore full speed: backlog drains.
	if err := c.SetSpeed("machine1", 1); err != nil {
		t.Fatal(err)
	}
	c.TickSecond(nil)
	if conns, _ := c.Conns("machine1"); conns != 0 {
		t.Errorf("backlog not drained: %d", conns)
	}
}

func TestSetSpeedValidation(t *testing.T) {
	c := newCluster(t, 1)
	if err := c.SetSpeed("machine1", 0); err == nil {
		t.Error("zero speed: want error")
	}
	if err := c.SetSpeed("machine1", 1.5); err == nil {
		t.Error("speed > 1: want error")
	}
	if err := c.SetSpeed("ghost", 0.5); err == nil {
		t.Error("unknown machine: want error")
	}
	if _, err := c.Speed("ghost"); err == nil {
		t.Error("unknown machine: want error")
	}
}
