package webcluster

import (
	"fmt"
	"time"

	"github.com/darklab/mercury/internal/lvs"
	"github.com/darklab/mercury/internal/workload"
)

// TwoTier composes a frontend web tier with a backend
// application/database tier, the multi-tier extension the paper's
// Section 7 calls for ("Freon needs to be extended to deal with
// multi-tier services"). Static requests complete in the frontend;
// every completed dynamic request issues one backend job through the
// backend tier's own balancer. Each tier keeps its own LVS instance,
// so a Freon per tier manages its machines independently — exactly how
// the base policy generalizes.
type TwoTier struct {
	front *Cluster
	back  *Cluster

	frontDropped uint64 // refused at the frontend
	backDropped  uint64 // dynamic requests whose backend job was refused
	backIssued   uint64
}

// TwoTierConfig sets both tiers' cost models.
type TwoTierConfig struct {
	// Frontend is the web tier's cost model. Its DynamicCPU is the
	// frontend share of a dynamic request (parsing, templating);
	// default 5ms.
	Frontend Config
	// BackendCPU is the backend work per dynamic request; default 20ms.
	BackendCPU time.Duration
	// BackendDisk is the backend disk work per dynamic request;
	// default 10ms.
	BackendDisk time.Duration
	// BackendQueueCap bounds backend server queues; default 200.
	BackendQueueCap int
}

func (c TwoTierConfig) withDefaults() TwoTierConfig {
	if c.Frontend.DynamicCPU <= 0 {
		c.Frontend.DynamicCPU = 5 * time.Millisecond
	}
	if c.BackendCPU <= 0 {
		c.BackendCPU = 20 * time.Millisecond
	}
	if c.BackendDisk <= 0 {
		c.BackendDisk = 10 * time.Millisecond
	}
	if c.BackendQueueCap <= 0 {
		c.BackendQueueCap = 200
	}
	return c
}

// NewTwoTier builds both tiers. Machine names must be unique across
// tiers (they share one thermal model).
func NewTwoTier(frontBal, backBal *lvs.Balancer, frontMachines, backMachines []string, cfg TwoTierConfig) (*TwoTier, error) {
	cfg = cfg.withDefaults()
	seen := map[string]bool{}
	for _, m := range append(append([]string(nil), frontMachines...), backMachines...) {
		if seen[m] {
			return nil, fmt.Errorf("webcluster: machine %q appears in both tiers", m)
		}
		seen[m] = true
	}
	front, err := New(frontBal, frontMachines, cfg.Frontend)
	if err != nil {
		return nil, err
	}
	// Backend jobs travel as "static" requests whose cost model is the
	// backend work: CPU plus disk.
	back, err := New(backBal, backMachines, Config{
		StaticCPU:      cfg.BackendCPU,
		StaticDisk:     cfg.BackendDisk,
		DynamicCPU:     cfg.BackendCPU,
		QueueCap:       cfg.BackendQueueCap,
		SlotsPerSecond: cfg.Frontend.SlotsPerSecond,
	})
	if err != nil {
		return nil, err
	}
	return &TwoTier{front: front, back: back}, nil
}

// Front returns the frontend tier.
func (t *TwoTier) Front() *Cluster { return t.front }

// Back returns the backend tier.
func (t *TwoTier) Back() *Cluster { return t.back }

// TwoTierTick reports one emulated second across both tiers.
type TwoTierTick struct {
	Front Tick
	Back  Tick
	// BackendJobs is how many backend jobs the frontend issued.
	BackendJobs int
}

// TickSecond advances both tiers one second: the frontend serves the
// arrivals, then its completed dynamic requests become backend jobs
// spread across the same second.
func (t *TwoTier) TickSecond(arrivals []workload.Request) TwoTierTick {
	frontTick := t.front.TickSecond(arrivals)
	jobs := 0
	for _, st := range frontTick.PerServer {
		jobs += st.CompletedDynamic
	}
	backReqs := make([]workload.Request, jobs)
	for i := range backReqs {
		backReqs[i] = workload.Request{
			At: time.Duration(i) * time.Second / time.Duration(jobs),
		}
	}
	backTick := t.back.TickSecond(backReqs)

	t.frontDropped += uint64(frontTick.Dropped)
	t.backDropped += uint64(backTick.Dropped)
	t.backIssued += uint64(jobs)
	return TwoTierTick{Front: frontTick, Back: backTick, BackendJobs: jobs}
}

// Totals aggregates end-to-end accounting: a request counts as dropped
// if either tier refused it.
func (t *TwoTier) Totals() Totals {
	f := t.front.Totals()
	return Totals{
		Arrived:   f.Arrived,
		Completed: f.Completed - t.backDropped,
		Dropped:   f.Dropped + t.backDropped,
	}
}

// BackendIssued returns how many backend jobs the frontend has issued.
func (t *TwoTier) BackendIssued() uint64 { return t.backIssued }
