package webcluster

import (
	"math"
	"testing"
	"time"

	"github.com/darklab/mercury/internal/lvs"
)

func newTwoTier(t *testing.T, cfg TwoTierConfig) *TwoTier {
	t.Helper()
	tt, err := NewTwoTier(lvs.New(), lvs.New(),
		[]string{"web1", "web2"}, []string{"app1", "app2", "app3"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestTwoTierValidation(t *testing.T) {
	if _, err := NewTwoTier(lvs.New(), lvs.New(),
		[]string{"m1"}, []string{"m1"}, TwoTierConfig{}); err == nil {
		t.Error("shared machine name across tiers: want error")
	}
	if _, err := NewTwoTier(lvs.New(), lvs.New(), nil, []string{"a"}, TwoTierConfig{}); err == nil {
		t.Error("empty frontend: want error")
	}
}

func TestTwoTierDynamicFlowsToBackend(t *testing.T) {
	tt := newTwoTier(t, TwoTierConfig{})
	// 40 dynamic requests: the frontend does 5ms each (cheap), then the
	// backend does 20ms CPU + 10ms disk each.
	tick := tt.TickSecond(burst(40, true))
	if tick.BackendJobs != 40 {
		t.Errorf("backend jobs = %d, want 40", tick.BackendJobs)
	}
	var frontCPU, backCPU, backDisk float64
	for _, st := range tick.Front.PerServer {
		frontCPU += float64(st.CPUUtil)
	}
	for _, st := range tick.Back.PerServer {
		backCPU += float64(st.CPUUtil)
		backDisk += float64(st.DiskUtil)
	}
	// Frontend: 40*5ms = 0.2 cpu-seconds; backend: 40*20ms = 0.8.
	if math.Abs(frontCPU-0.2) > 0.02 {
		t.Errorf("frontend cpu = %v, want ~0.2", frontCPU)
	}
	if math.Abs(backCPU-0.8) > 0.05 {
		t.Errorf("backend cpu = %v, want ~0.8", backCPU)
	}
	if math.Abs(backDisk-0.4) > 0.05 {
		t.Errorf("backend disk = %v, want ~0.4", backDisk)
	}
	if got := tt.BackendIssued(); got != 40 {
		t.Errorf("BackendIssued = %d", got)
	}
}

func TestTwoTierStaticStaysInFrontend(t *testing.T) {
	tt := newTwoTier(t, TwoTierConfig{})
	tick := tt.TickSecond(burst(50, false))
	if tick.BackendJobs != 0 {
		t.Errorf("static requests issued %d backend jobs", tick.BackendJobs)
	}
	for name, st := range tick.Back.PerServer {
		if st.CPUUtil != 0 {
			t.Errorf("backend %s busy on static traffic", name)
		}
	}
	if tt.Totals().Dropped != 0 {
		t.Error("drops on a light static tick")
	}
}

func TestTwoTierBackendOverloadDropsEndToEnd(t *testing.T) {
	// A tiny backend queue forces refusals; end-to-end accounting must
	// count them as dropped even though the frontend served them.
	tt, err := NewTwoTier(lvs.New(), lvs.New(),
		[]string{"web1"}, []string{"app1"},
		TwoTierConfig{BackendQueueCap: 5, BackendCPU: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tt.TickSecond(burst(100, true))
	}
	totals := tt.Totals()
	if totals.Dropped == 0 {
		t.Error("backend overload produced no end-to-end drops")
	}
	if totals.Completed+totals.Dropped > totals.Arrived {
		t.Errorf("accounting broken: %+v", totals)
	}
}

func TestTwoTierFreonShiftsBackendLoad(t *testing.T) {
	// The multi-tier story: a backend machine gets "hot" (here we just
	// deweight it the way admd would) and new backend jobs shift to its
	// peers, without touching the frontend.
	tt := newTwoTier(t, TwoTierConfig{})
	tt.Back().Balancer().SetWeight("app1", 0.1)
	var app1, app2 float64
	for i := 0; i < 20; i++ {
		tick := tt.TickSecond(burst(60, true))
		app1 += float64(tick.Back.PerServer["app1"].CPUUtil)
		app2 += float64(tick.Back.PerServer["app2"].CPUUtil)
	}
	if app1 >= app2/2 {
		t.Errorf("deweighted backend still loaded: app1=%v app2=%v", app1, app2)
	}
	if tt.Totals().Dropped != 0 {
		t.Error("shifting backend load dropped requests")
	}
}

func TestTwoTierDefaults(t *testing.T) {
	cfg := TwoTierConfig{}.withDefaults()
	if cfg.Frontend.DynamicCPU != 5*time.Millisecond ||
		cfg.BackendCPU != 20*time.Millisecond ||
		cfg.BackendDisk != 10*time.Millisecond ||
		cfg.BackendQueueCap != 200 {
		t.Errorf("defaults = %+v", cfg)
	}
}
