// Package webcluster emulates the paper's evaluation substrate: a Web
// server cluster behind an LVS load balancer serving a synthetic trace
// with 30% dynamic-content requests (a CGI script computing for 25 ms)
// and 70% static requests. The emulation advances in one-second ticks
// in lockstep with the Mercury solver: each tick assigns the second's
// arrivals through the balancer, advances per-server FIFO queues, and
// reports per-server CPU and disk utilizations for the thermal model,
// plus served/dropped counts for throughput accounting.
package webcluster

import (
	"fmt"
	"time"

	"github.com/darklab/mercury/internal/lvs"
	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/units"
	"github.com/darklab/mercury/internal/workload"
)

// Request content classes used for content-aware distribution: the
// balancer can keep CPU-heavy dynamic requests away from servers with
// hot CPUs (Section 4.3's two-stage policy).
const (
	ClassDynamic = "dynamic"
	ClassStatic  = "static"
)

// Config sets the request cost model.
type Config struct {
	// DynamicCPU is the CPU demand of a dynamic (CGI) request;
	// default 25ms, the paper's script.
	DynamicCPU time.Duration
	// StaticCPU is the CPU demand of a static request; default 2ms.
	StaticCPU time.Duration
	// StaticDisk is the disk demand of a static request; default 8ms.
	StaticDisk time.Duration
	// QueueCap bounds each server's outstanding requests (in service +
	// queued); beyond it new assignments are refused. Default 200.
	QueueCap int
	// SlotsPerSecond is the number of service sub-slots per tick.
	// Requests are assigned in their arrival sub-slot and connections
	// release at sub-slot boundaries, so concurrent-connection counts
	// (which Freon caps) reflect real in-flight concurrency rather
	// than whole-second batches. Default 10 (100 ms slots).
	SlotsPerSecond int
}

func (c Config) withDefaults() Config {
	if c.DynamicCPU <= 0 {
		c.DynamicCPU = 25 * time.Millisecond
	}
	if c.StaticCPU <= 0 {
		c.StaticCPU = 2 * time.Millisecond
	}
	if c.StaticDisk <= 0 {
		c.StaticDisk = 8 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 200
	}
	if c.SlotsPerSecond <= 0 {
		c.SlotsPerSecond = 10
	}
	return c
}

// MeanCPUPerRequest returns the average CPU seconds one request costs
// under the given dynamic-content share; experiment setup uses it to
// size arrival rates for a target utilization.
func (c Config) MeanCPUPerRequest(dynamicShare float64) float64 {
	c = c.withDefaults()
	return dynamicShare*c.DynamicCPU.Seconds() + (1-dynamicShare)*c.StaticCPU.Seconds()
}

type pending struct {
	cpuLeft float64 // seconds of CPU work remaining
	disk    float64 // seconds of disk work, queued on completion
	dynamic bool
}

type server struct {
	name  string
	on    bool
	speed float64 // service-rate factor (1 = nominal); DVFS emulation
	queue []pending
	disk  float64 // disk backlog, seconds

	lastCPU  units.Fraction
	lastDisk units.Fraction
}

// ServerTick is one server's activity during a tick.
type ServerTick struct {
	CPUUtil   units.Fraction
	DiskUtil  units.Fraction
	Assigned  int
	Completed int
	// CompletedDynamic counts the dynamic share of Completed; a
	// two-tier composition turns these into backend jobs.
	CompletedDynamic int
	Dropped          int
	Conns            int // outstanding requests at end of tick
}

// Tick is one emulated second of cluster activity.
type Tick struct {
	Arrived   int
	Dropped   int
	Completed int
	PerServer map[string]ServerTick
}

// Totals accumulates over a whole run.
type Totals struct {
	Arrived   uint64
	Completed uint64
	Dropped   uint64
}

// DropRate returns the dropped share of arrived requests.
func (t Totals) DropRate() float64 {
	if t.Arrived == 0 {
		return 0
	}
	return float64(t.Dropped) / float64(t.Arrived)
}

// Cluster is the emulated web cluster.
type Cluster struct {
	cfg     Config
	bal     *lvs.Balancer
	servers map[string]*server
	order   []string
	totals  Totals
}

// New builds a cluster over the given balancer, registering every
// machine with weight 1.
func New(bal *lvs.Balancer, machines []string, cfg Config) (*Cluster, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("webcluster: no machines")
	}
	c := &Cluster{cfg: cfg.withDefaults(), bal: bal, servers: map[string]*server{}}
	for _, m := range machines {
		if _, dup := c.servers[m]; dup {
			return nil, fmt.Errorf("webcluster: duplicate machine %q", m)
		}
		if err := bal.AddServer(m, 1); err != nil {
			return nil, err
		}
		c.servers[m] = &server{name: m, on: true, speed: 1}
		c.order = append(c.order, m)
	}
	return c, nil
}

// Balancer returns the underlying balancer (Freon's control surface).
func (c *Cluster) Balancer() *lvs.Balancer { return c.bal }

// Machines returns the machine names in registration order.
func (c *Cluster) Machines() []string { return append([]string(nil), c.order...) }

// Conns returns a server's outstanding request count.
func (c *Cluster) Conns(name string) (int, error) {
	s, ok := c.servers[name]
	if !ok {
		return 0, fmt.Errorf("webcluster: unknown machine %q", name)
	}
	return len(s.queue), nil
}

// On reports whether a server is powered.
func (c *Cluster) On(name string) (bool, error) {
	s, ok := c.servers[name]
	if !ok {
		return false, fmt.Errorf("webcluster: unknown machine %q", name)
	}
	return s.on, nil
}

// SetSpeed scales a server's CPU service rate, emulating local
// voltage/frequency scaling (Section 4.3's comparison point): a server
// at speed 0.5 needs twice the CPU time per request. Speed must be in
// (0, 1].
func (c *Cluster) SetSpeed(name string, speed float64) error {
	s, ok := c.servers[name]
	if !ok {
		return fmt.Errorf("webcluster: unknown machine %q", name)
	}
	if speed <= 0 || speed > 1 {
		return fmt.Errorf("webcluster: speed %v outside (0,1]", speed)
	}
	s.speed = speed
	return nil
}

// Speed returns a server's current service-rate factor.
func (c *Cluster) Speed(name string) (float64, error) {
	s, ok := c.servers[name]
	if !ok {
		return 0, fmt.Errorf("webcluster: unknown machine %q", name)
	}
	return s.speed, nil
}

// SetPower turns a server on or off. Turning a server off drops its
// outstanding requests (Freon-EC avoids this by quiescing and draining
// first; the traditional red-line policy does not).
func (c *Cluster) SetPower(name string, on bool) error {
	s, ok := c.servers[name]
	if !ok {
		return fmt.Errorf("webcluster: unknown machine %q", name)
	}
	if s.on == on {
		return nil
	}
	s.on = on
	if !on {
		for range s.queue {
			_ = c.bal.Done(name)
			c.totals.Dropped++
		}
		s.queue = nil
		s.disk = 0
		s.lastCPU, s.lastDisk = 0, 0
	}
	return nil
}

// Utilizations returns a server's utilizations from the most recent
// tick, in the shape monitord reports to the solver.
func (c *Cluster) Utilizations(name string) (map[model.UtilSource]units.Fraction, error) {
	s, ok := c.servers[name]
	if !ok {
		return nil, fmt.Errorf("webcluster: unknown machine %q", name)
	}
	return map[model.UtilSource]units.Fraction{
		model.UtilCPU:  s.lastCPU,
		model.UtilDisk: s.lastDisk,
	}, nil
}

// Totals returns the run's cumulative counts.
func (c *Cluster) Totals() Totals { return c.totals }

// TickSecond advances the cluster by one second, split into
// SlotsPerSecond service sub-slots: each arrival is assigned through
// the balancer in its arrival sub-slot, and every powered server then
// executes that slot's share of CPU and disk service, releasing
// completed connections at the slot boundary.
func (c *Cluster) TickSecond(arrivals []workload.Request) Tick {
	tick := Tick{PerServer: map[string]ServerTick{}}
	per := map[string]*ServerTick{}
	busyCPU := map[string]float64{}
	busyDisk := map[string]float64{}
	for _, name := range c.order {
		per[name] = &ServerTick{}
	}

	slots := c.cfg.SlotsPerSecond
	slotDur := 1.0 / float64(slots)
	slotOf := func(at time.Duration) int {
		frac := float64(at%time.Second) / float64(time.Second)
		s := int(frac * float64(slots))
		if s >= slots {
			s = slots - 1
		}
		return s
	}

	idx := 0
	for slot := 0; slot < slots; slot++ {
		// Assign this sub-slot's arrivals.
		for idx < len(arrivals) && slotOf(arrivals[idx].At) <= slot {
			req := arrivals[idx]
			idx++
			tick.Arrived++
			c.totals.Arrived++
			class := ClassStatic
			if req.Dynamic {
				class = ClassDynamic
			}
			name, err := c.bal.AssignClass(class)
			if err != nil {
				tick.Dropped++
				c.totals.Dropped++
				continue
			}
			s := c.servers[name]
			if !s.on || len(s.queue) >= c.cfg.QueueCap {
				// Powered-off servers should be quiesced or
				// zero-weighted; if one is still picked, or the queue
				// is full, refuse.
				_ = c.bal.Done(name)
				tick.Dropped++
				c.totals.Dropped++
				per[name].Dropped++
				continue
			}
			p := pending{cpuLeft: c.cfg.StaticCPU.Seconds(), disk: c.cfg.StaticDisk.Seconds()}
			if req.Dynamic {
				p = pending{cpuLeft: c.cfg.DynamicCPU.Seconds(), dynamic: true}
			}
			s.queue = append(s.queue, p)
			per[name].Assigned++
		}

		// Serve one sub-slot on every powered server.
		for _, name := range c.order {
			s := c.servers[name]
			if !s.on {
				continue
			}
			st := per[name]
			budget := slotDur * s.speed
			for len(s.queue) > 0 && budget > 0 {
				head := &s.queue[0]
				if head.cpuLeft <= budget {
					budget -= head.cpuLeft
					s.disk += head.disk
					if head.dynamic {
						st.CompletedDynamic++
					}
					s.queue = s.queue[1:]
					st.Completed++
					c.totals.Completed++
					tick.Completed++
					_ = c.bal.Done(name)
				} else {
					head.cpuLeft -= budget
					budget = 0
				}
			}
			busyCPU[name] += (slotDur*s.speed - budget) / s.speed

			diskServed := s.disk
			if diskServed > slotDur {
				diskServed = slotDur
			}
			s.disk -= diskServed
			busyDisk[name] += diskServed
		}
	}

	for _, name := range c.order {
		s := c.servers[name]
		st := per[name]
		st.CPUUtil = units.Fraction(busyCPU[name]).Clamp()
		st.DiskUtil = units.Fraction(busyDisk[name]).Clamp()
		s.lastCPU, s.lastDisk = st.CPUUtil, st.DiskUtil
		st.Conns = len(s.queue)
		tick.PerServer[name] = *st
	}
	return tick
}
