// Package fanctl implements variable-speed fan control, one of the
// paper's stated extensions (Section 7: "we are currently extending
// our models to consider clock throttling and variable-speed fans ...
// these behaviors are well-defined and essentially depend on
// temperature, which Mercury emulates"). A Controller watches one
// temperature node and steps the machine's fan flow through a level
// table with hysteresis, the way server firmware does; the actuation
// path is exactly the solver's fiddle hook for fan speed, so the same
// controller can drive a remote daemon through the fiddle client.
package fanctl

import (
	"fmt"
	"sort"

	"github.com/darklab/mercury/internal/units"
)

// Sensors reads component temperatures (the solver implements this).
type Sensors interface {
	Temperature(machine, node string) (units.Celsius, error)
}

// Actuator changes a machine's fan throughput (the solver's
// SetFanFlow, or a fiddle client's equivalent).
type Actuator interface {
	SetFanFlow(machine string, flow units.CubicFeetPerMinute) error
}

// Level maps a temperature threshold to a fan speed: the fan runs at
// Flow while the observed temperature is at or above Above (the
// highest matching level wins).
type Level struct {
	Above units.Celsius
	Flow  units.CubicFeetPerMinute
}

// Config describes one machine's fan policy.
type Config struct {
	// Node is the temperature the firmware reacts to, e.g. "cpu".
	Node string
	// Base is the fan speed below every level's threshold.
	Base units.CubicFeetPerMinute
	// Levels are the step-up thresholds; they are sorted by Above.
	Levels []Level
	// Hysteresis is subtracted from a level's threshold before
	// stepping back down, preventing hunting around a boundary.
	// Default 2 C.
	Hysteresis units.Celsius
}

// Validate checks the policy.
func (c Config) Validate() error {
	if c.Node == "" {
		return fmt.Errorf("fanctl: node required")
	}
	if c.Base <= 0 {
		return fmt.Errorf("fanctl: base flow must be positive, got %v", c.Base)
	}
	if len(c.Levels) == 0 {
		return fmt.Errorf("fanctl: at least one level required")
	}
	if c.Hysteresis < 0 {
		return fmt.Errorf("fanctl: negative hysteresis %v", c.Hysteresis)
	}
	prevT := units.Celsius(-1e9)
	prevF := c.Base
	for _, l := range c.Levels {
		if l.Above <= prevT {
			return fmt.Errorf("fanctl: level thresholds must strictly increase (%v after %v)", l.Above, prevT)
		}
		if l.Flow <= prevF {
			return fmt.Errorf("fanctl: level flows must strictly increase (%v after %v)", l.Flow, prevF)
		}
		prevT, prevF = l.Above, l.Flow
	}
	return nil
}

// DefaultConfig is a sensible policy for the Table 1 server: nominal
// 38.6 cfm, stepping up at CPU 60 and 67 C.
func DefaultConfig() Config {
	return Config{
		Node: "cpu",
		Base: 38.6,
		Levels: []Level{
			{Above: 60, Flow: 55},
			{Above: 67, Flow: 75},
		},
		Hysteresis: 2,
	}
}

// Controller steps one machine's fan.
type Controller struct {
	machine  string
	cfg      Config
	sensors  Sensors
	actuator Actuator
	level    int // -1 = base
	changes  int
}

// New builds a controller; the fan starts at Base.
func New(machine string, sensors Sensors, actuator Actuator, cfg Config) (*Controller, error) {
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = 2
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sort.Slice(cfg.Levels, func(i, j int) bool { return cfg.Levels[i].Above < cfg.Levels[j].Above })
	c := &Controller{machine: machine, cfg: cfg, sensors: sensors, actuator: actuator, level: -1}
	if err := actuator.SetFanFlow(machine, cfg.Base); err != nil {
		return nil, err
	}
	return c, nil
}

// Level returns the current level index (-1 = base) and flow.
func (c *Controller) Level() (int, units.CubicFeetPerMinute) {
	return c.level, c.flowAt(c.level)
}

// Changes returns how many speed changes the controller has made.
func (c *Controller) Changes() int { return c.changes }

func (c *Controller) flowAt(level int) units.CubicFeetPerMinute {
	if level < 0 {
		return c.cfg.Base
	}
	return c.cfg.Levels[level].Flow
}

// Tick reads the temperature and adjusts the fan if a threshold was
// crossed. Call it on the firmware's polling period (once per emulated
// second is typical).
func (c *Controller) Tick() error {
	temp, err := c.sensors.Temperature(c.machine, c.cfg.Node)
	if err != nil {
		return fmt.Errorf("fanctl: %s: %w", c.machine, err)
	}
	target := c.level
	// Step up through every level whose threshold we meet.
	for i := len(c.cfg.Levels) - 1; i >= 0; i-- {
		if temp >= c.cfg.Levels[i].Above {
			if i > target {
				target = i
			}
			break
		}
	}
	// Step down only past the hysteresis band.
	for target >= 0 && temp < c.cfg.Levels[target].Above-c.cfg.Hysteresis {
		target--
	}
	if target == c.level {
		return nil
	}
	if err := c.actuator.SetFanFlow(c.machine, c.flowAt(target)); err != nil {
		return fmt.Errorf("fanctl: %s: %w", c.machine, err)
	}
	c.level = target
	c.changes++
	return nil
}
