package fanctl

import (
	"errors"
	"testing"

	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/units"
)

// fakeMachine lets tests set the observed temperature directly and
// records fan commands.
type fakeMachine struct {
	temp  units.Celsius
	flows []units.CubicFeetPerMinute
	fail  bool
}

func (f *fakeMachine) Temperature(machine, node string) (units.Celsius, error) {
	if f.fail {
		return 0, errors.New("sensor offline")
	}
	return f.temp, nil
}

func (f *fakeMachine) SetFanFlow(machine string, flow units.CubicFeetPerMinute) error {
	f.flows = append(f.flows, flow)
	return nil
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{Base: 38.6, Levels: []Level{{60, 55}}},                              // no node
		{Node: "cpu", Levels: []Level{{60, 55}}},                             // no base
		{Node: "cpu", Base: 38.6},                                            // no levels
		{Node: "cpu", Base: 38.6, Levels: []Level{{60, 55}}, Hysteresis: -1}, // bad hysteresis
		{Node: "cpu", Base: 38.6, Levels: []Level{{60, 55}, {60, 70}}},       // dup threshold
		{Node: "cpu", Base: 38.6, Levels: []Level{{60, 30}}},                 // flow below base
		{Node: "cpu", Base: 38.6, Levels: []Level{{60, 55}, {70, 50}}},       // non-increasing flow
	}
	for i, cfg := range bad {
		if cfg.Hysteresis == 0 {
			cfg.Hysteresis = 2
		}
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStepUpAndDownWithHysteresis(t *testing.T) {
	fm := &fakeMachine{temp: 40}
	c, err := New("m1", fm, fm, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Initial actuation at base.
	if len(fm.flows) != 1 || fm.flows[0] != 38.6 {
		t.Fatalf("initial flows = %v", fm.flows)
	}
	// Cool: stays at base.
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	if lvl, flow := c.Level(); lvl != -1 || flow != 38.6 {
		t.Errorf("level = %d/%v", lvl, flow)
	}

	// Crosses first threshold.
	fm.temp = 61
	c.Tick()
	if lvl, flow := c.Level(); lvl != 0 || flow != 55 {
		t.Errorf("after 61C level = %d/%v, want 0/55", lvl, flow)
	}
	// Just inside hysteresis band (60-2=58): no step down.
	fm.temp = 59
	c.Tick()
	if lvl, _ := c.Level(); lvl != 0 {
		t.Errorf("hysteresis violated: level = %d", lvl)
	}
	// Below the band: back to base.
	fm.temp = 57
	c.Tick()
	if lvl, flow := c.Level(); lvl != -1 || flow != 38.6 {
		t.Errorf("after cooling level = %d/%v", lvl, flow)
	}
	// Jump straight to the top level.
	fm.temp = 70
	c.Tick()
	if lvl, flow := c.Level(); lvl != 1 || flow != 75 {
		t.Errorf("hot level = %d/%v, want 1/75", lvl, flow)
	}
	// Drop far: all the way back down in one tick.
	fm.temp = 30
	c.Tick()
	if lvl, _ := c.Level(); lvl != -1 {
		t.Errorf("cold level = %d", lvl)
	}
	if c.Changes() != 4 {
		t.Errorf("changes = %d, want 4", c.Changes())
	}
}

func TestNoHuntingAtBoundary(t *testing.T) {
	fm := &fakeMachine{temp: 40}
	c, _ := New("m1", fm, fm, DefaultConfig())
	// Oscillate right around the threshold inside the hysteresis band:
	// exactly one change should happen.
	before := c.Changes()
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			fm.temp = 60.5
		} else {
			fm.temp = 59.5
		}
		c.Tick()
	}
	if c.Changes()-before != 1 {
		t.Errorf("changes = %d, want 1 (no hunting)", c.Changes()-before)
	}
}

func TestSensorErrorPropagates(t *testing.T) {
	fm := &fakeMachine{temp: 40}
	c, _ := New("m1", fm, fm, DefaultConfig())
	fm.fail = true
	if err := c.Tick(); err == nil {
		t.Error("sensor failure: want error")
	}
}

func TestAgainstSolverCoolsHotCPU(t *testing.T) {
	// End to end: a fan controller on the real solver keeps a loaded
	// CPU measurably cooler than a fixed fan.
	steady := func(withController bool) float64 {
		s, err := solver.NewSingle(model.DefaultServer("m1"), solver.Config{})
		if err != nil {
			t.Fatal(err)
		}
		s.SetUtilization("m1", model.UtilCPU, 1)
		var c *Controller
		if withController {
			c, err = New("m1", s, s, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4*3600; i++ {
			s.Step()
			if c != nil && i%10 == 0 {
				if err := c.Tick(); err != nil {
					t.Fatal(err)
				}
			}
		}
		temp, err := s.Temperature("m1", model.NodeCPU)
		if err != nil {
			t.Fatal(err)
		}
		return float64(temp)
	}
	fixed := steady(false)
	controlled := steady(true)
	if controlled >= fixed-1 {
		t.Errorf("fan control did not help: fixed=%v controlled=%v", fixed, controlled)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	fm := &fakeMachine{}
	if _, err := New("m1", fm, fm, Config{}); err == nil {
		t.Error("zero config: want error")
	}
}
