package dash

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/darklab/mercury/internal/alert"
	"github.com/darklab/mercury/internal/causal"
	"github.com/darklab/mercury/internal/clock"
	"github.com/darklab/mercury/internal/ctl"
	"github.com/darklab/mercury/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestParseTargets(t *testing.T) {
	ts, err := ParseTargets("solverd=http://127.0.0.1:9367, 127.0.0.1:9368")
	if err != nil {
		t.Fatal(err)
	}
	want := []Target{
		{Name: "solverd", URL: "http://127.0.0.1:9367"},
		{Name: "127.0.0.1:9368", URL: "http://127.0.0.1:9368"},
	}
	if len(ts) != 2 || ts[0] != want[0] || ts[1] != want[1] {
		t.Errorf("targets = %+v, want %+v", ts, want)
	}
	if _, err := ParseTargets(" , "); err == nil {
		t.Error("empty target list accepted")
	}
}

// twoDaemons boots two ctl servers on a shared virtual clock — one
// with a tracer, as solverd would run, one with only an event log, as
// monitord would — and returns them with their feeds.
func twoDaemons(t *testing.T) (targets []Target, logA, logB *telemetry.EventLog, tr *causal.Tracer, clk *clock.Virtual) {
	t.Helper()
	clk = clock.NewVirtual()
	logA = telemetry.NewEventLog(64, clk)
	logB = telemetry.NewEventLog(64, clk)
	tr = causal.NewTracer(64, clk)

	regA := telemetry.NewRegistry()
	regA.Counter("mercury_solver_steps_total", "steps").Add(42)
	srvA := ctl.New(ctl.WithEvents(logA), ctl.WithTracer(tr), ctl.WithRegistry(regA),
		ctl.WithState(func() any { return map[string]any{"machines": 4} }))
	addrA, err := srvA.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvA.Close() })

	srvB := ctl.New(ctl.WithEvents(logB))
	addrB, err := srvB.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvB.Close() })

	targets = []Target{
		{Name: "solverd", URL: "http://" + addrA},
		{Name: "monitord1", URL: "http://" + addrB},
	}
	return targets, logA, logB, tr, clk
}

// seedEmergency populates the daemons with a deterministic emergency:
// events on both logs and a connected trace on the solverd tracer.
func seedEmergency(logA, logB *telemetry.EventLog, tr *causal.Tracer, clk *clock.Virtual) {
	clk.Advance(10 * time.Second)
	logB.Emit(telemetry.EvEmergencyRaised, "machine1", "cpu", 67.5, "")
	root := causal.Span{
		Trace: tr.NewTrace("machine1"), Kind: causal.KindEmergency,
		Begin: tr.Now(), End: tr.Now(), Machine: "machine1", Node: "cpu", Value: 67.5,
	}
	root.ID = tr.Emit(root)

	clk.Advance(1 * time.Second)
	logA.Emit(telemetry.EvPDOutput, "machine1", "", 0.6, "cpu")
	pd := causal.Span{
		Trace: root.Trace, Parent: root.ID, Kind: causal.KindPDOutput,
		Begin: tr.Now(), End: tr.Now(), Machine: "machine1", Value: 0.6,
	}
	pd.ID = tr.Emit(pd)

	clk.Advance(1 * time.Second)
	logA.Emit(telemetry.EvWeightChange, "machine1", "", 0.55, "")
	tr.Emit(causal.Span{
		Trace: root.Trace, Parent: pd.ID, Kind: causal.KindWeight,
		Begin: tr.Now(), End: tr.Now(), Machine: "machine1", Value: 0.55,
	})

	clk.Advance(120 * time.Second)
	logA.Emit(telemetry.EvRelease, "machine1", "", 0, "")
	tr.Emit(causal.Span{
		Trace: root.Trace, Parent: root.ID, Kind: causal.KindRecovery,
		Begin: tr.Now(), End: tr.Now(), Machine: "machine1",
	})
}

func TestAggregateTwoDaemons(t *testing.T) {
	targets, logA, logB, tr, clk := twoDaemons(t)
	seedEmergency(logA, logB, tr, clk)

	a := New(targets, nil)
	if err := a.PollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	cs := a.State()
	if len(cs.Targets) != 2 {
		t.Fatalf("targets = %d", len(cs.Targets))
	}
	for _, ts := range cs.Targets {
		if !ts.Healthy {
			t.Errorf("target %s unhealthy: %s", ts.Name, ts.Error)
		}
	}
	if cs.Targets[0].Spans != 4 || cs.Targets[0].Events != 3 {
		t.Errorf("solverd spans=%d events=%d, want 4 and 3", cs.Targets[0].Spans, cs.Targets[0].Events)
	}
	if cs.Targets[1].Events != 1 {
		t.Errorf("monitord1 events=%d, want 1", cs.Targets[1].Events)
	}
	if cs.Traces != 1 || cs.Emergencies != 1 || cs.Recovered != 1 {
		t.Errorf("traces=%d emergencies=%d recovered=%d", cs.Traces, cs.Emergencies, cs.Recovered)
	}
	if m := cs.Targets[0].Metrics["mercury_solver_steps_total"]; m != 42 {
		t.Errorf("scraped solver steps = %v, want 42", m)
	}
	if cs.Targets[0].State == nil {
		t.Error("solverd /state not embedded")
	}

	// The merged timeline interleaves both daemons' events with the
	// spans, time-ordered, events first at equal stamps.
	tl := a.Timeline()
	if len(tl) != 8 {
		t.Fatalf("timeline length = %d, want 8", len(tl))
	}
	if tl[0].Source != "monitord1" || tl[0].Event == nil || tl[0].Event.Type != telemetry.EvEmergencyRaised {
		t.Errorf("timeline[0] = %+v", tl[0])
	}
	if tl[1].Span == nil || tl[1].Span.Kind != causal.KindEmergency {
		t.Errorf("timeline[1] = %+v", tl[1])
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].At < tl[i-1].At {
			t.Errorf("timeline out of order at %d: %v after %v", i, tl[i].At, tl[i-1].At)
		}
	}

	// Latency histograms: actuation 2s after detection, recovery 122s.
	if n := a.detectToActuate.Count(); n != 1 {
		t.Errorf("detect-to-actuate count = %d", n)
	}
	if s := a.detectToActuate.Sum(); s != 2 {
		t.Errorf("detect-to-actuate sum = %v, want 2", s)
	}
	if s := a.detectToRecover.Sum(); s != 122 {
		t.Errorf("detect-to-recover sum = %v, want 122", s)
	}

	// A second poll must not double-ingest or double-observe.
	if err := a.PollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := len(a.Timeline()); n != 8 {
		t.Errorf("timeline after re-poll = %d, want 8", n)
	}
	if n := a.detectToActuate.Count(); n != 1 {
		t.Errorf("detect-to-actuate count after re-poll = %d", n)
	}
}

func TestShardLabel(t *testing.T) {
	cases := []struct {
		raw  string
		want string
	}{
		{`{"machines":4}`, ""},
		{`{"region":0,"regions":1}`, ""},
		{`{"region":0,"regions":2}`, "0/2"},
		{`{"region":3,"regions":4,"machines":16}`, "3/4"},
		{`not json`, ""},
	}
	for _, c := range cases {
		if got := shardLabel(json.RawMessage(c.raw)); got != c.want {
			t.Errorf("shardLabel(%s) = %q, want %q", c.raw, got, c.want)
		}
	}
	if got := shardLabel(nil); got != "" {
		t.Errorf("shardLabel(nil) = %q, want empty", got)
	}
}

// TestAggregateShardedState checks that a sharded solverd's region
// labels surface as the target's shard label in /state.
func TestAggregateShardedState(t *testing.T) {
	srv := ctl.New(ctl.WithState(func() any {
		return map[string]any{"machines": 8, "region": 1, "regions": 2}
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	a := New([]Target{{Name: "solverd1", URL: "http://" + addr}}, nil)
	if err := a.PollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	cs := a.State()
	if len(cs.Targets) != 1 || cs.Targets[0].Shard != "1/2" {
		t.Fatalf("shard label = %+v, want 1/2", cs.Targets)
	}
}

func TestStreamSSE(t *testing.T) {
	targets, logA, logB, _, clk := twoDaemons(t)

	a := New(targets, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a.Stream(ctx)

	// Give the subscriptions a moment to connect, then emit live.
	time.Sleep(100 * time.Millisecond)
	clk.Advance(5 * time.Second)
	logA.Emit(telemetry.EvPDOutput, "machine2", "", 0.3, "")
	logB.Emit(telemetry.EvEmergencyRaised, "machine2", "cpu", 68, "")

	deadline := time.Now().Add(5 * time.Second)
	for {
		tl := a.Timeline()
		if len(tl) >= 2 {
			srcs := map[string]bool{}
			for _, e := range tl {
				srcs[e.Source] = true
			}
			if srcs["solverd"] && srcs["monitord1"] {
				return // both daemons' live streams reached the timeline
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeline after SSE = %+v", tl)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	targets, logA, logB, tr, clk := twoDaemons(t)
	seedEmergency(logA, logB, tr, clk)

	a := New(targets, nil)
	if err := a.PollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	// Structural validity: the export must parse back and contain the
	// span slices and event instants with microsecond stamps.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var slices, instants int
	for _, ev := range parsed.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
		case "i":
			instants++
		}
	}
	if slices != 4 || instants != 4 {
		t.Errorf("export has %d slices and %d instants, want 4 and 4", slices, instants)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Chrome trace export differs from golden; run with -update after intentional changes\ngot:\n%s", got)
	}
}

// TestAggregateAlerts checks that a target's /alerts snapshot is
// embedded in the aggregate state with its pending/firing counters
// lifted and summed cluster-wide, and that alert-less targets stay
// healthy (their 404 is tolerated, like /spans).
func TestAggregateAlerts(t *testing.T) {
	clk := clock.NewVirtual()
	eng, err := alert.New(alert.Config{
		Rules:  []alert.Rule{{Name: "hot", Kind: "threshold"}},
		Step:   time.Second,
		Probes: []alert.Probe{{Machine: "machine1", Node: "cpu", Low: 64, High: 67, RedLine: 71}},
		Fill:   func(dst []float64) int { dst[0] = 70; return 1 },
		Clock:  clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.EvalTick(1) // 70C > High 67C with no for-duration: firing at once

	srvA := ctl.New(ctl.WithAlerts(func() any { return eng.State() }, eng.Transitions()))
	addrA, err := srvA.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvA.Close() })
	srvB := ctl.New(ctl.WithState(func() any { return map[string]any{"machines": 1} }))
	addrB, err := srvB.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvB.Close() })

	a := New([]Target{
		{Name: "solverd", URL: "http://" + addrA},
		{Name: "monitord1", URL: "http://" + addrB},
	}, nil)
	if err := a.PollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	cs := a.State()
	if cs.AlertsFiring != 1 || cs.AlertsPending != 0 {
		t.Errorf("cluster firing=%d pending=%d, want 1 and 0", cs.AlertsFiring, cs.AlertsPending)
	}
	if ts := cs.Targets[0]; ts.Alerts == nil || ts.AlertsFiring != 1 {
		t.Errorf("solverd alerts=%s firing=%d, want snapshot and 1", ts.Alerts, ts.AlertsFiring)
	}
	if ts := cs.Targets[1]; ts.Alerts != nil || ts.Error != "" {
		t.Errorf("alert-less target: alerts=%s err=%q, want none", ts.Alerts, ts.Error)
	}
}
