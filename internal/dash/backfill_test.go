package dash

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"github.com/darklab/mercury/internal/causal"
	"github.com/darklab/mercury/internal/clock"
	"github.com/darklab/mercury/internal/ctl"
	"github.com/darklab/mercury/internal/recordlog"
	"github.com/darklab/mercury/internal/telemetry"
)

// TestBackfillHandoff pins the cold-start story: a dash that loads a
// flight-recorder capture seeds its per-target seq high-water marks
// from the recorded events and spans, so the live ?from= poll and SSE
// subscription resume exactly where the capture ended — every record
// ingested once, none dropped (docs/recordlog.md).
func TestBackfillHandoff(t *testing.T) {
	clk := clock.NewVirtual()
	log := telemetry.NewEventLog(64, clk)
	tr := causal.NewTracer(64, clk)

	// First half of the run is captured, as solverd -record would do it:
	// sinks on both feeds.
	dir := t.TempDir()
	w, err := recordlog.Create(filepath.Join(dir, "solverd.mrl"), "solverd", clk)
	if err != nil {
		t.Fatal(err)
	}
	log.SetSink(w.RecordEvent)
	tr.SetSink(w.RecordSpan)

	clk.Advance(10 * time.Second)
	log.Emit(telemetry.EvEmergencyRaised, "machine1", "cpu", 67.5, "")
	root := causal.Span{
		Trace: tr.NewTrace("machine1"), Kind: causal.KindEmergency,
		Begin: tr.Now(), End: tr.Now(), Machine: "machine1", Node: "cpu", Value: 67.5,
	}
	root.ID = tr.Emit(root)
	clk.Advance(time.Second)
	log.Emit(telemetry.EvPDOutput, "machine1", "", 0.6, "cpu")
	tr.Emit(causal.Span{
		Trace: root.Trace, Parent: root.ID, Kind: causal.KindWeight,
		Begin: tr.Now(), End: tr.Now(), Machine: "machine1", Value: 0.55,
	})

	// The capture stops (recorder restarted, say) but the daemon keeps
	// running: what follows lives only in the RAM rings.
	log.SetSink(nil)
	tr.SetSink(nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	log.Emit(telemetry.EvWeightChange, "machine1", "", 0.55, "")
	clk.Advance(120 * time.Second)
	log.Emit(telemetry.EvRelease, "machine1", "", 0, "")
	tr.Emit(causal.Span{
		Trace: root.Trace, Parent: root.ID, Kind: causal.KindRecovery,
		Begin: tr.Now(), End: tr.Now(), Machine: "machine1",
	})

	// A live control plane over the same rings; the target is named
	// after the recorded node so the handoff engages.
	srv := ctl.New(ctl.WithEvents(log), ctl.WithTracer(tr))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	a := New([]Target{{Name: "solverd", URL: "http://" + addr}}, nil)

	st, err := a.Backfill(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 1 || st.Events != 2 || st.Spans != 2 {
		t.Fatalf("backfill stats = %+v, want 1 file, 2 events, 2 spans", st)
	}
	a.mu.Lock()
	eseen, sseen := a.eventSeen["solverd"], a.spanSeen["solverd"]
	a.mu.Unlock()
	if eseen != 2 || sseen != 2 {
		t.Fatalf("seq high-water marks after backfill = %d/%d, want 2/2", eseen, sseen)
	}

	// Live poll: exactly the post-capture records join. Contiguous seqs
	// 1..4 prove nothing was duplicated or dropped across the handoff.
	if err := a.PollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkEvents := func(want int) []telemetry.Event {
		t.Helper()
		a.mu.Lock()
		evs := append([]telemetry.Event(nil), a.events["solverd"]...)
		a.mu.Unlock()
		if len(evs) != want {
			t.Fatalf("ingested %d events, want %d: %v", len(evs), want, evs)
		}
		for i := range evs {
			if evs[i].Seq != uint64(i+1) {
				t.Fatalf("event seqs not contiguous after handoff (dup or drop): %v", evs)
			}
		}
		return evs
	}
	checkEvents(4)
	a.mu.Lock()
	nspans := len(a.spans)
	a.mu.Unlock()
	if nspans != 3 {
		t.Fatalf("ingested %d spans, want 3 (2 backfilled + 1 live)", nspans)
	}

	// The SSE subscription resumes from the same mark: one more live
	// emit arrives exactly once.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a.Stream(ctx)
	time.Sleep(100 * time.Millisecond)
	clk.Advance(time.Second)
	log.Emit(telemetry.EvPDOutput, "machine2", "", 0.3, "")
	deadline := time.Now().Add(5 * time.Second)
	for {
		a.mu.Lock()
		n := len(a.events["solverd"])
		a.mu.Unlock()
		if n >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("live SSE event never arrived after backfill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkEvents(5)
}

// TestBackfillEmptyDir pins the error on a directory with no captures.
func TestBackfillEmptyDir(t *testing.T) {
	a := New([]Target{{Name: "x", URL: "http://127.0.0.1:1"}}, nil)
	if _, err := a.Backfill(t.TempDir()); err == nil {
		t.Fatal("backfill of an empty directory: want error")
	}
}
