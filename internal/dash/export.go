package dash

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"github.com/darklab/mercury/internal/causal"
	"github.com/darklab/mercury/internal/telemetry"
)

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events for spans, "i" instants for telemetry events,
// "M" metadata for process and thread names. Perfetto and
// chrome://tracing both load the JSON object form emitted here.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports the merged timeline as Chrome trace-event
// JSON. Processes are targets, threads are machines (or the span's
// node when it has no machine), spans become complete ("X") slices
// categorized by their trace ID, and telemetry events become global
// instants. Output is deterministic: spans in canonical order, events
// in timeline order, thread IDs assigned by sorted label.
func (a *Aggregator) WriteChromeTrace(w io.Writer) error {
	a.mu.Lock()
	spans := make([]srcSpan, 0, len(a.spans))
	for _, s := range a.spans {
		spans = append(spans, s)
	}
	events := map[string][]telemetry.Event{}
	shards := map[string]string{}
	for _, t := range a.targets {
		events[t.Name] = append([]telemetry.Event(nil), a.events[t.Name]...)
		shards[t.Name] = shardLabel(a.states[t.Name])
	}
	a.mu.Unlock()

	sort.Slice(spans, func(i, j int) bool { return spanLess(&spans[i].Span, &spans[j].Span) })

	pids := map[string]int{}
	var out chromeTrace
	for i, t := range a.targets {
		pids[t.Name] = i + 1
		// Sharded solverds get their region in the process label, so a
		// scale-out run reads as "solverd0 [shard 0/4]" … in Perfetto.
		name := t.Name
		if s := shards[t.Name]; s != "" {
			name += " [shard " + s + "]"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1,
			Args: map[string]any{"name": name},
		})
	}

	// Threads: one per machine (cluster-level spans and events land on
	// tid 1, "cluster"). Labels are collected first and numbered in
	// sorted order so the export does not depend on map iteration.
	labels := map[string]bool{}
	for _, s := range spans {
		labels[spanThread(&s.Span)] = true
	}
	for _, t := range a.targets {
		for _, e := range events[t.Name] {
			labels[eventThread(e)] = true
		}
	}
	sorted := make([]string, 0, len(labels))
	for l := range labels {
		sorted = append(sorted, l)
	}
	sort.Strings(sorted)
	tids := map[string]int{}
	for i, l := range sorted {
		tids[l] = i + 1
		for _, t := range a.targets {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pids[t.Name], Tid: i + 1,
				Args: map[string]any{"name": l},
			})
		}
	}

	for _, s := range spans {
		args := map[string]any{
			"trace": hex16(s.Trace),
			"id":    hex16(s.ID),
		}
		if s.Parent != 0 {
			args["parent"] = hex16(s.Parent)
		}
		if s.Node != "" {
			args["node"] = s.Node
		}
		if s.Value != 0 {
			args["value"] = s.Value
		}
		if s.Step != 0 {
			args["step"] = s.Step
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: string(s.Kind),
			Cat:  "trace-" + hex16(s.Trace),
			Ph:   "X",
			Ts:   micros(s.Begin),
			Dur:  micros(s.End - s.Begin),
			Pid:  pids[s.Source],
			Tid:  tids[spanThread(&s.Span)],
			Args: args,
		})
	}
	for _, t := range a.targets {
		for _, e := range events[t.Name] {
			args := map[string]any{}
			if e.Machine != "" {
				args["machine"] = e.Machine
			}
			if e.Node != "" {
				args["node"] = e.Node
			}
			if e.Value != 0 {
				args["value"] = e.Value
			}
			if e.Detail != "" {
				args["detail"] = e.Detail
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: string(e.Type),
				Cat:  "event",
				Ph:   "i",
				S:    "g",
				Ts:   micros(e.At),
				Pid:  pids[t.Name],
				Tid:  tids[eventThread(e)],
				Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

func micros(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

// hex16 is %016x without fmt: the Chrome export stamps three IDs per
// span, and Sprintf's reflection is ~26x the cost of a fixed-width
// hex fill (see internal/ctl's parseFrom for the read-side twin).
func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

func spanThread(s *causal.Span) string {
	if s.Machine != "" {
		return s.Machine
	}
	if s.Node != "" {
		return s.Node
	}
	return "cluster"
}

func eventThread(e telemetry.Event) string {
	if e.Machine != "" {
		return e.Machine
	}
	return "cluster"
}

// spanLess is the canonical span order (causal.Sort) as a comparator.
func spanLess(a, b *causal.Span) bool {
	if a.Begin != b.Begin {
		return a.Begin < b.Begin
	}
	if a.Trace != b.Trace {
		return a.Trace < b.Trace
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Machine != b.Machine {
		return a.Machine < b.Machine
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.ID < b.ID
}
