// Package dash is mercury-dash's cluster aggregator. It subscribes to
// the /events SSE streams of any number of Mercury daemons, polls
// their /spans rings and scrapes their /metrics, and merges everything
// into one cluster timeline keyed by causal trace ID. From the merged
// spans it derives the paper's two end-to-end latencies — emergency
// detection to first admission-control actuation, and detection to
// recovery — as histograms in a telemetry registry, and it exports the
// whole timeline as Chrome trace-event JSON that Perfetto and
// chrome://tracing load directly. See docs/observability.md.
package dash

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/darklab/mercury/internal/causal"
	"github.com/darklab/mercury/internal/recordlog"
	"github.com/darklab/mercury/internal/telemetry"
)

// Target is one daemon's control plane.
type Target struct {
	// Name labels the target in the timeline and the Chrome export
	// (process name).
	Name string `json:"name"`
	// URL is the control plane's base URL, e.g. "http://127.0.0.1:9367".
	URL string `json:"url"`
}

// ParseTargets parses a comma-separated -targets flag value of
// name=url pairs; a bare url gets its host:port as name.
func ParseTargets(s string) ([]Target, error) {
	var out []Target
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok {
			url = part
			name = strings.TrimPrefix(strings.TrimPrefix(part, "http://"), "https://")
		}
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		out = append(out, Target{Name: name, URL: strings.TrimSuffix(url, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dash: no targets in %q", s)
	}
	return out, nil
}

// latencyBounds bucket the detect-to-actuate and detect-to-recover
// latencies, in seconds. Actuation often lands in the same observation
// period as detection (sub-second on the virtual clock); recovery takes
// minutes.
var latencyBounds = []float64{0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600, 1200}

// srcSpan is a deduplicated span plus the target that first reported
// it.
type srcSpan struct {
	causal.Span
	Source string
}

// traceAcct tracks which latencies have been observed for one trace,
// so a span seen again on the next poll is not double-counted.
type traceAcct struct {
	actuated  bool
	recovered bool
}

// TargetState is one target's row in the aggregate /state document.
type TargetState struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	Events  int    `json:"events"`
	Spans   int    `json:"spans"`
	// Metrics holds the unlabeled numeric series scraped from the
	// target's /metrics exposition.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Shard labels a horizontally sharded solverd as "region/regions"
	// (e.g. "1/4"), lifted from its /state document; empty for
	// unsharded daemons.
	Shard string `json:"shard,omitempty"`
	// State is the target's own /state document, embedded verbatim.
	State json.RawMessage `json:"state,omitempty"`
	// Alerts is the target's /alerts snapshot, embedded verbatim
	// (omitted when the target runs no alert engine); AlertsPending
	// and AlertsFiring lift its instance counters for the cluster
	// alert panel, which keys firing alerts by target name and Shard.
	Alerts        json.RawMessage `json:"alerts,omitempty"`
	AlertsPending int             `json:"alerts_pending,omitempty"`
	AlertsFiring  int             `json:"alerts_firing,omitempty"`
}

// alertCounts lifts the pending/firing instance counters out of a
// target's /alerts snapshot.
func alertCounts(raw json.RawMessage) (pending, firing int) {
	if raw == nil {
		return 0, 0
	}
	var s struct {
		Pending int `json:"pending"`
		Firing  int `json:"firing"`
	}
	if json.Unmarshal(raw, &s) != nil {
		return 0, 0
	}
	return s.Pending, s.Firing
}

// shardLabel extracts a sharded solverd's "region/regions" label from
// its embedded /state document ("" when the target is not a shard).
func shardLabel(raw json.RawMessage) string {
	if raw == nil {
		return ""
	}
	var s struct {
		Region  int `json:"region"`
		Regions int `json:"regions"`
	}
	if json.Unmarshal(raw, &s) != nil || s.Regions <= 1 {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Region, s.Regions)
}

// ClusterState is the aggregate /state document.
type ClusterState struct {
	Targets     []TargetState `json:"targets"`
	Traces      int           `json:"traces"`
	Emergencies int           `json:"emergencies"`
	Recovered   int           `json:"recovered"`
	Timeline    int           `json:"timeline_len"`
	// AlertsPending and AlertsFiring sum the per-target alert
	// counters — the cluster-wide alert panel's headline numbers.
	AlertsPending int `json:"alerts_pending"`
	AlertsFiring  int `json:"alerts_firing"`
}

// Entry is one row of the merged cluster timeline: either an event or
// a span, stamped with the target that reported it.
type Entry struct {
	At     time.Duration    `json:"at_ns"`
	Source string           `json:"source"`
	Trace  uint64           `json:"trace,omitempty"`
	Event  *telemetry.Event `json:"event,omitempty"`
	Span   *causal.Span     `json:"span,omitempty"`
}

// Aggregator merges the observability output of several daemons.
// Methods are safe for concurrent use; the SSE goroutines and the
// polling loop feed the same state.
type Aggregator struct {
	targets []Target
	client  *http.Client
	reg     *telemetry.Registry

	detectToActuate *telemetry.Histogram
	detectToRecover *telemetry.Histogram

	mu        sync.Mutex
	events    map[string][]telemetry.Event // per target, seq-ordered
	eventSeen map[string]uint64            // highest event seq ingested per target
	spanSeen  map[string]uint64            // highest span seq ingested per target
	spans     map[uint64]srcSpan           // deduplicated by content-derived span ID
	acct      map[uint64]*traceAcct        // per trace ID
	states    map[string]json.RawMessage
	alerts    map[string]json.RawMessage // per target /alerts snapshot
	metrics   map[string]map[string]float64
	lastErr   map[string]string
}

// New builds an aggregator over the given targets. The registry gains
// the dash's own metrics (latency histograms, ingest counters) and is
// what the dash's own /metrics serves.
func New(targets []Target, reg *telemetry.Registry) *Aggregator {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	a := &Aggregator{
		targets:   targets,
		client:    &http.Client{Timeout: 10 * time.Second},
		reg:       reg,
		events:    map[string][]telemetry.Event{},
		eventSeen: map[string]uint64{},
		spanSeen:  map[string]uint64{},
		spans:     map[uint64]srcSpan{},
		acct:      map[uint64]*traceAcct{},
		states:    map[string]json.RawMessage{},
		alerts:    map[string]json.RawMessage{},
		metrics:   map[string]map[string]float64{},
		lastErr:   map[string]string{},
	}
	a.detectToActuate = reg.Histogram("dash_detect_to_actuate_seconds",
		"emergency detection to first admission-control actuation", latencyBounds)
	a.detectToRecover = reg.Histogram("dash_detect_to_recover_seconds",
		"emergency detection to recovery", latencyBounds)
	reg.GaugeFunc("dash_traces", "distinct causal traces aggregated", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(len(a.acct))
	})
	reg.GaugeFunc("dash_spans", "deduplicated spans aggregated", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(len(a.spans))
	})
	return a
}

// Registry returns the aggregator's metrics registry.
func (a *Aggregator) Registry() *telemetry.Registry { return a.reg }

// Targets returns the configured targets.
func (a *Aggregator) Targets() []Target { return append([]Target(nil), a.targets...) }

// BackfillStats summarizes one historical load.
type BackfillStats struct {
	Files    int
	Events   int
	Spans    int
	TempRows int
}

// Backfill loads every flight-recorder capture (*.mrl, see
// docs/recordlog.md) in dir into the aggregator before the live
// subscriptions start, so a cold-started dash is not blind to history
// the daemons' RAM rings have already wrapped past. Each file's
// events and spans are ingested under the node name recorded in its
// header, and — because ingestion runs through the same per-source
// seq high-water marks the live paths use — a subsequent
// /events?from= or /spans?from= subscription against a target with
// that name resumes exactly where the capture ended: no duplicates,
// no dropped records. Name live -targets after the daemons' node IDs
// for the handoff to engage.
func (a *Aggregator) Backfill(dir string) (BackfillStats, error) {
	var st BackfillStats
	matches, err := filepath.Glob(filepath.Join(dir, "*.mrl"))
	if err != nil {
		return st, err
	}
	if len(matches) == 0 {
		return st, fmt.Errorf("dash: no .mrl captures in %s", dir)
	}
	sort.Strings(matches)
	for _, path := range matches {
		// Rotation segments (base.1.mrl, …) are not separate captures:
		// ReadLog stitches them back through their base file, so
		// ingesting them here would double-count every record.
		if recordlog.IsSegment(path) {
			continue
		}
		log, err := recordlog.ReadLog(path)
		if err != nil {
			return st, fmt.Errorf("dash: backfill %s: %w", path, err)
		}
		a.addEvents(log.Header.Node, log.Events)
		a.AddSpans(log.Header.Node, log.Spans)
		st.Files++
		st.Events += len(log.Events)
		st.Spans += len(log.Spans)
		st.TempRows += len(log.TempRows)
	}
	return st, nil
}

// PollOnce fetches every target's spans, state, and metrics once, and
// — for targets whose SSE stream is not running — their retained
// events. The first error is returned after all targets were tried;
// per-target errors are also recorded in the /state document.
func (a *Aggregator) PollOnce(ctx context.Context) error {
	var first error
	for _, t := range a.targets {
		if err := a.pollTarget(ctx, t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (a *Aggregator) pollTarget(ctx context.Context, t Target) error {
	var firstErr error
	note := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// Events (JSON replay path; the SSE stream deduplicates against
	// the same per-target seq high-water mark).
	a.mu.Lock()
	from := a.eventSeen[t.Name]
	a.mu.Unlock()
	var evs []telemetry.Event
	if err := a.getJSON(ctx, t.URL+"/events?format=json&from="+strconv.FormatUint(from, 10), &evs); err != nil {
		note(err)
	} else {
		a.addEvents(t.Name, evs)
	}

	// Spans.
	a.mu.Lock()
	sfrom := a.spanSeen[t.Name]
	a.mu.Unlock()
	var spans []causal.Span
	if err := a.getJSON(ctx, t.URL+"/spans?from="+strconv.FormatUint(sfrom, 10), &spans); err != nil {
		// Daemons without a tracer answer 404; that is not an error.
		if !strings.Contains(err.Error(), "404") {
			note(err)
		}
	} else {
		a.AddSpans(t.Name, spans)
	}

	// State, embedded verbatim.
	if raw, err := a.getRaw(ctx, t.URL+"/state"); err != nil {
		if !strings.Contains(err.Error(), "404") {
			note(err)
		}
	} else {
		a.mu.Lock()
		a.states[t.Name] = raw
		a.mu.Unlock()
	}

	// Alerts snapshot, embedded verbatim. Daemons without an alert
	// engine (no -alerts flag) answer 404; that is not an error.
	if raw, err := a.getRaw(ctx, t.URL+"/alerts?format=json"); err != nil {
		if !strings.Contains(err.Error(), "404") {
			note(err)
		}
	} else {
		a.mu.Lock()
		a.alerts[t.Name] = raw
		a.mu.Unlock()
	}

	// Metrics scrape.
	if raw, err := a.getRaw(ctx, t.URL+"/metrics"); err != nil {
		note(err)
	} else {
		a.mu.Lock()
		a.metrics[t.Name] = parseMetrics(string(raw))
		a.mu.Unlock()
	}

	a.mu.Lock()
	if firstErr != nil {
		a.lastErr[t.Name] = firstErr.Error()
	} else {
		delete(a.lastErr, t.Name)
	}
	a.mu.Unlock()
	return firstErr
}

func (a *Aggregator) getRaw(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dash: GET %s: %d", url, resp.StatusCode)
	}
	return body, nil
}

func (a *Aggregator) getJSON(ctx context.Context, url string, v any) error {
	body, err := a.getRaw(ctx, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// parseMetrics extracts the unlabeled series from a Prometheus text
// exposition — enough to surface each daemon's counters in the
// aggregate state without a real scrape pipeline.
func parseMetrics(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || strings.ContainsAny(name, "{}") {
			continue
		}
		if f, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err == nil {
			out[name] = f
		}
	}
	return out
}

// addEvents ingests events from one target, deduplicating by the
// target's sequence numbers (SSE and polling may overlap).
func (a *Aggregator) addEvents(source string, evs []telemetry.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range evs {
		if e.Seq <= a.eventSeen[source] {
			continue
		}
		a.eventSeen[source] = e.Seq
		a.events[source] = append(a.events[source], e)
	}
}

// AddSpans ingests spans reported by a target, deduplicating by the
// content-derived span ID, and folds completed emergency traces into
// the latency histograms. Exported for harnesses that already hold a
// span set (the CI smoke test feeds Result.Spans directly).
func (a *Aggregator) AddSpans(source string, spans []causal.Span) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range spans {
		if s.Seq > a.spanSeen[source] {
			a.spanSeen[source] = s.Seq
		}
		s.Seq = 0 // ring position is per-target; identity is the ID
		if _, ok := a.spans[s.ID]; ok {
			continue
		}
		a.spans[s.ID] = srcSpan{Span: s, Source: source}
	}
	a.updateLatenciesLocked()
}

// actuationKind reports whether a span kind is an admission-control or
// power actuation — the "first reaction" end of detect-to-actuate.
func actuationKind(k causal.Kind) bool {
	switch k {
	case causal.KindWeight, causal.KindConnCap, causal.KindClassBlock,
		causal.KindDrain, causal.KindPowerOn, causal.KindPowerOff, causal.KindRedLine:
		return true
	}
	return false
}

// updateLatenciesLocked walks the emergency traces and observes each
// latency exactly once per trace.
func (a *Aggregator) updateLatenciesLocked() {
	type agg struct {
		root     time.Duration
		hasRoot  bool
		actuate  time.Duration
		hasAct   bool
		recover  time.Duration
		hasRecov bool
	}
	byTrace := map[uint64]*agg{}
	for _, s := range a.spans {
		g := byTrace[s.Trace]
		if g == nil {
			g = &agg{}
			byTrace[s.Trace] = g
		}
		switch {
		case s.Kind == causal.KindEmergency:
			if !g.hasRoot || s.Begin < g.root {
				g.root, g.hasRoot = s.Begin, true
			}
		case actuationKind(s.Kind):
			if !g.hasAct || s.Begin < g.actuate {
				g.actuate, g.hasAct = s.Begin, true
			}
		case s.Kind == causal.KindRecovery:
			if !g.hasRecov || s.Begin < g.recover {
				g.recover, g.hasRecov = s.Begin, true
			}
		}
	}
	for traceID, g := range byTrace {
		if !g.hasRoot {
			continue
		}
		acct := a.acct[traceID]
		if acct == nil {
			acct = &traceAcct{}
			a.acct[traceID] = acct
		}
		if g.hasAct && !acct.actuated {
			a.detectToActuate.Observe((g.actuate - g.root).Seconds())
			acct.actuated = true
		}
		if g.hasRecov && !acct.recovered {
			a.detectToRecover.Observe((g.recover - g.root).Seconds())
			acct.recovered = true
		}
	}
}

// Stream opens one SSE subscription per target and keeps each alive
// (reconnecting with the per-target seq high-water mark) until ctx is
// done. It returns immediately; the subscriptions run in goroutines.
func (a *Aggregator) Stream(ctx context.Context) {
	for _, t := range a.targets {
		go a.streamTarget(ctx, t)
	}
}

func (a *Aggregator) streamTarget(ctx context.Context, t Target) {
	for ctx.Err() == nil {
		if err := a.streamOnce(ctx, t); err != nil {
			a.mu.Lock()
			a.lastErr[t.Name] = err.Error()
			a.mu.Unlock()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(500 * time.Millisecond):
		}
	}
}

// streamOnce consumes one SSE connection until it breaks.
func (a *Aggregator) streamOnce(ctx context.Context, t Target) error {
	a.mu.Lock()
	from := a.eventSeen[t.Name]
	a.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		t.URL+"/events?from="+strconv.FormatUint(from, 10), nil)
	if err != nil {
		return err
	}
	// The SSE stream is long-lived; the polling client's timeout would
	// kill it.
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dash: SSE %s: %d", t.URL, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // ids, event names, keepalive comments, separators
		}
		var e telemetry.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			continue
		}
		a.addEvents(t.Name, []telemetry.Event{e})
	}
	return sc.Err()
}

// State builds the aggregate /state document.
func (a *Aggregator) State() ClusterState {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := ClusterState{Traces: len(a.acct)}
	for _, s := range a.spans {
		if s.Kind == causal.KindEmergency {
			cs.Emergencies++
		}
		if s.Kind == causal.KindRecovery {
			cs.Recovered++
		}
	}
	for _, t := range a.targets {
		ts := TargetState{
			Name:    t.Name,
			URL:     t.URL,
			Events:  len(a.events[t.Name]),
			Metrics: a.metrics[t.Name],
			Shard:   shardLabel(a.states[t.Name]),
			State:   a.states[t.Name],
			Alerts:  a.alerts[t.Name],
			Error:   a.lastErr[t.Name],
		}
		ts.AlertsPending, ts.AlertsFiring = alertCounts(ts.Alerts)
		cs.AlertsPending += ts.AlertsPending
		cs.AlertsFiring += ts.AlertsFiring
		ts.Healthy = ts.Error == "" && (ts.Events > 0 || ts.Metrics != nil)
		for _, s := range a.spans {
			if s.Source == t.Name {
				ts.Spans++
			}
		}
		cs.Timeline += ts.Events + ts.Spans
		cs.Targets = append(cs.Targets, ts)
	}
	return cs
}

// Timeline returns the merged cluster timeline: every event and every
// span from every target in one deterministic order (time, then events
// before spans — matching the daemons' emit order — then source, then
// canonical span order).
func (a *Aggregator) Timeline() []Entry {
	a.mu.Lock()
	var out []Entry
	for _, t := range a.targets {
		for i := range a.events[t.Name] {
			e := a.events[t.Name][i]
			out = append(out, Entry{At: e.At, Source: t.Name, Event: &e})
		}
	}
	spans := make([]causal.Span, 0, len(a.spans))
	srcByID := make(map[uint64]string, len(a.spans))
	for id, s := range a.spans {
		spans = append(spans, s.Span)
		srcByID[id] = s.Source
	}
	a.mu.Unlock()

	causal.Sort(spans)
	for i := range spans {
		s := spans[i]
		out = append(out, Entry{At: s.Begin, Source: srcByID[s.ID], Trace: s.Trace, Span: &spans[i]})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		// Events sort before spans at the same instant; both slices
		// are already internally ordered, so stability does the rest.
		return out[i].Span == nil && out[j].Span != nil
	})
	return out
}
