package fiddle

import (
	"strings"
	"testing"
	"time"

	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/wire"
)

func newSolver(t *testing.T) *solver.Solver {
	t.Helper()
	c, err := model.DefaultCluster("room", 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(c, solver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestApplyAllOps(t *testing.T) {
	s := newSolver(t)
	d := Direct{Solver: s}
	apply := func(op *wire.FiddleOp) {
		t.Helper()
		if err := d.Apply(op); err != nil {
			t.Fatalf("%s: %v", wire.OpName(op.Op), err)
		}
	}

	apply(&wire.FiddleOp{Op: wire.OpPinInlet, Strings: []string{"machine1"}, Floats: []float64{30}})
	if pinned, temp, _ := s.InletPinned("machine1"); !pinned || temp != 30 {
		t.Errorf("pin = %v %v", pinned, temp)
	}
	apply(&wire.FiddleOp{Op: wire.OpUnpinInlet, Strings: []string{"machine1"}})
	if pinned, _, _ := s.InletPinned("machine1"); pinned {
		t.Error("still pinned")
	}
	apply(&wire.FiddleOp{Op: wire.OpSetNodeTemp, Strings: []string{"machine1", model.NodeCPU}, Floats: []float64{55}})
	if temp, _ := s.Temperature("machine1", model.NodeCPU); temp != 55 {
		t.Errorf("node temp = %v", temp)
	}
	apply(&wire.FiddleOp{Op: wire.OpSetSourceTemp, Strings: []string{model.NodeAC}, Floats: []float64{25}})
	if temp, _ := s.SourceTemperature(model.NodeAC); temp != 25 {
		t.Errorf("source temp = %v", temp)
	}
	apply(&wire.FiddleOp{Op: wire.OpSetHeatK, Strings: []string{"machine1", model.NodeCPU, model.NodeCPUAir}, Floats: []float64{2}})
	if k, _ := s.HeatK("machine1", model.NodeCPU, model.NodeCPUAir); k != 2 {
		t.Errorf("k = %v", k)
	}
	apply(&wire.FiddleOp{Op: wire.OpSetAirFraction, Strings: []string{"machine1", model.NodeInlet, model.NodeDiskAir}, Floats: []float64{0.3}})
	apply(&wire.FiddleOp{Op: wire.OpSetFanFlow, Strings: []string{"machine1"}, Floats: []float64{50}})
	if f, _ := s.FanFlow("machine1"); f != 50 {
		t.Errorf("fan = %v", f)
	}
	apply(&wire.FiddleOp{Op: wire.OpSetPowerScale, Strings: []string{"machine1", model.NodeCPU}, Floats: []float64{0.5}})
	apply(&wire.FiddleOp{Op: wire.OpSetMachinePower, Strings: []string{"machine2"}, Floats: []float64{0}})
	if on, _ := s.MachineOn("machine2"); on {
		t.Error("machine2 still on")
	}
	apply(&wire.FiddleOp{Op: wire.OpSetMachinePower, Strings: []string{"machine2"}, Floats: []float64{1}})
	if on, _ := s.MachineOn("machine2"); !on {
		t.Error("machine2 still off")
	}
}

func TestApplyRejectsInvalid(t *testing.T) {
	s := newSolver(t)
	if err := Apply(s, &wire.FiddleOp{Op: 0x7F}); err == nil {
		t.Error("unknown op: want error")
	}
	if err := Apply(s, &wire.FiddleOp{Op: wire.OpPinInlet, Strings: []string{"ghost"}, Floats: []float64{30}}); err == nil {
		t.Error("unknown machine: want error")
	}
	if err := Apply(s, &wire.FiddleOp{Op: wire.OpPinInlet, Strings: []string{"machine1"}}); err == nil {
		t.Error("wrong arity: want error")
	}
}

func TestParseCommandForms(t *testing.T) {
	cases := []struct {
		args []string
		op   byte
	}{
		{[]string{"machine1", "temperature", "inlet", "30"}, wire.OpPinInlet},
		{[]string{"machine1", "temperature", "inlet", "auto"}, wire.OpUnpinInlet},
		{[]string{"machine1", "temperature", "cpu", "55"}, wire.OpSetNodeTemp},
		{[]string{"source", "ac", "temperature", "27"}, wire.OpSetSourceTemp},
		{[]string{"machine1", "heatk", "cpu", "cpu_air", "1.5"}, wire.OpSetHeatK},
		{[]string{"machine1", "airfraction", "inlet", "disk_air", "0.3"}, wire.OpSetAirFraction},
		{[]string{"machine1", "fanflow", "55"}, wire.OpSetFanFlow},
		{[]string{"machine1", "powerscale", "cpu", "0.5"}, wire.OpSetPowerScale},
		{[]string{"machine1", "power", "off"}, wire.OpSetMachinePower},
		{[]string{"machine1", "power", "on"}, wire.OpSetMachinePower},
	}
	for _, tc := range cases {
		op, err := ParseCommand(tc.args)
		if err != nil {
			t.Errorf("%v: %v", tc.args, err)
			continue
		}
		if op.Op != tc.op {
			t.Errorf("%v: op = %s, want %s", tc.args, wire.OpName(op.Op), wire.OpName(tc.op))
		}
		if err := wire.ValidateFiddle(op); err != nil {
			t.Errorf("%v: produced invalid op: %v", tc.args, err)
		}
	}
}

func TestParseCommandErrors(t *testing.T) {
	bad := [][]string{
		{},
		{"machine1"},
		{"machine1", "temperature"},
		{"machine1", "temperature", "inlet", "warm"},
		{"machine1", "explode", "now"},
		{"source", "ac", "27"},
		{"machine1", "power", "maybe"},
		{"machine1", "heatk", "a", "b"},
		{"machine1", "fanflow", "fast"},
	}
	for _, args := range bad {
		if _, err := ParseCommand(args); err == nil {
			t.Errorf("ParseCommand(%v): want error", args)
		}
	}
}

func TestParseScriptFigure4(t *testing.T) {
	// The exact script of Figure 4.
	script, err := ParseScript(`#!/bin/bash
sleep 100
fiddle machine1 temperature inlet 30
sleep 200
fiddle machine1 temperature inlet 21.6
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Actions) != 4 {
		t.Fatalf("actions = %d, want 4", len(script.Actions))
	}
	sched := script.Schedule()
	if len(sched) != 2 {
		t.Fatalf("schedule = %d ops", len(sched))
	}
	if sched[0].At != 100*time.Second || sched[1].At != 300*time.Second {
		t.Errorf("schedule times = %v, %v; want 100s, 300s", sched[0].At, sched[1].At)
	}
	if sched[0].Op.Op != wire.OpPinInlet || sched[0].Op.Floats[0] != 30 {
		t.Errorf("first op = %+v", sched[0].Op)
	}
	if sched[1].Op.Floats[0] != 21.6 {
		t.Errorf("second op = %+v", sched[1].Op)
	}
}

func TestParseScriptErrors(t *testing.T) {
	cases := []struct {
		src, sub string
	}{
		{"sleep", "sleep takes one argument"},
		{"sleep -5", "bad sleep duration"},
		{"sleep abc", "bad sleep duration"},
		{"reboot now", "unknown command"},
		{"fiddle machine1", "too few arguments"},
	}
	for _, tc := range cases {
		_, err := ParseScript(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.sub) {
			t.Errorf("ParseScript(%q) error = %v, want mention of %q", tc.src, err, tc.sub)
		}
	}
}

func TestScriptRunAppliesInOrder(t *testing.T) {
	s := newSolver(t)
	script, err := ParseScript(`
sleep 1
fiddle machine1 temperature inlet 30
fiddle machine1 fanflow 50
sleep 1
fiddle machine1 temperature inlet auto
`)
	if err != nil {
		t.Fatal(err)
	}
	var slept time.Duration
	if err := script.Run(Direct{Solver: s}, func(d time.Duration) { slept += d }); err != nil {
		t.Fatal(err)
	}
	if slept != 2*time.Second {
		t.Errorf("slept = %v", slept)
	}
	if pinned, _, _ := s.InletPinned("machine1"); pinned {
		t.Error("inlet should be unpinned at script end")
	}
	if f, _ := s.FanFlow("machine1"); f != 50 {
		t.Errorf("fan = %v", f)
	}
}

func TestScriptRunStopsOnError(t *testing.T) {
	s := newSolver(t)
	script, err := ParseScript(`
fiddle ghost temperature inlet 30
fiddle machine1 fanflow 50
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := script.Run(Direct{Solver: s}, func(time.Duration) {}); err == nil {
		t.Fatal("want error from unknown machine")
	}
	if f, _ := s.FanFlow("machine1"); f != 38.6 {
		t.Error("script continued past error")
	}
}
