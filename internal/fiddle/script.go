package fiddle

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/darklab/mercury/internal/wire"
)

// Action is one step of a fiddle script: either a pause or an
// operation.
type Action struct {
	// Sleep pauses the script when positive.
	Sleep time.Duration
	// Op is the operation to apply when Sleep is zero.
	Op *wire.FiddleOp
}

// Script is a parsed fiddle script, e.g. (Figure 4 of the paper):
//
//	#!/bin/bash
//	sleep 100
//	fiddle machine1 temperature inlet 30
//	sleep 200
//	fiddle machine1 temperature inlet 21.6
type Script struct {
	Actions []Action
}

// TimedOp is an operation with its offset from script start; see
// Schedule.
type TimedOp struct {
	At time.Duration
	Op *wire.FiddleOp
}

// ParseScript parses a fiddle script. Blank lines, '#' comments and a
// shebang line are ignored.
func ParseScript(src string) (*Script, error) {
	s := &Script{}
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "sleep":
			if len(fields) != 2 {
				return nil, fmt.Errorf("fiddle: line %d: sleep takes one argument", i+1)
			}
			secs, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || secs < 0 {
				return nil, fmt.Errorf("fiddle: line %d: bad sleep duration %q", i+1, fields[1])
			}
			s.Actions = append(s.Actions, Action{Sleep: time.Duration(secs * float64(time.Second))})
		case "fiddle":
			op, err := ParseCommand(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("fiddle: line %d: %w", i+1, err)
			}
			s.Actions = append(s.Actions, Action{Op: op})
		default:
			return nil, fmt.Errorf("fiddle: line %d: unknown command %q", i+1, fields[0])
		}
	}
	return s, nil
}

// ParseCommand parses the arguments of one fiddle invocation (without
// the leading "fiddle"). Accepted forms:
//
//	<machine> temperature inlet <C>        pin the inlet
//	<machine> temperature inlet auto       release the inlet pin
//	<machine> temperature <node> <C>       force a node temperature
//	source <name> temperature <C>          set an AC supply temperature
//	<machine> heatk <a> <b> <k>            change a heat constant
//	<machine> airfraction <from> <to> <f>  change an air split
//	<machine> fanflow <cfm>                change fan throughput
//	<machine> powerscale <component> <s>   throttle a component
//	<machine> power on|off                 power a machine up/down
func ParseCommand(args []string) (*wire.FiddleOp, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("too few arguments")
	}
	if args[0] == "source" {
		if len(args) != 4 || args[2] != "temperature" {
			return nil, fmt.Errorf("usage: source <name> temperature <C>")
		}
		t, err := parseFloat(args[3])
		if err != nil {
			return nil, err
		}
		return &wire.FiddleOp{Op: wire.OpSetSourceTemp, Strings: []string{args[1]}, Floats: []float64{t}}, nil
	}
	machine := args[0]
	switch args[1] {
	case "temperature":
		if len(args) != 4 {
			return nil, fmt.Errorf("usage: <machine> temperature <node> <C|auto>")
		}
		node, val := args[2], args[3]
		if node == "inlet" {
			if val == "auto" {
				return &wire.FiddleOp{Op: wire.OpUnpinInlet, Strings: []string{machine}}, nil
			}
			t, err := parseFloat(val)
			if err != nil {
				return nil, err
			}
			return &wire.FiddleOp{Op: wire.OpPinInlet, Strings: []string{machine}, Floats: []float64{t}}, nil
		}
		t, err := parseFloat(val)
		if err != nil {
			return nil, err
		}
		return &wire.FiddleOp{Op: wire.OpSetNodeTemp, Strings: []string{machine, node}, Floats: []float64{t}}, nil
	case "heatk":
		if len(args) != 5 {
			return nil, fmt.Errorf("usage: <machine> heatk <a> <b> <k>")
		}
		k, err := parseFloat(args[4])
		if err != nil {
			return nil, err
		}
		return &wire.FiddleOp{Op: wire.OpSetHeatK, Strings: []string{machine, args[2], args[3]}, Floats: []float64{k}}, nil
	case "airfraction":
		if len(args) != 5 {
			return nil, fmt.Errorf("usage: <machine> airfraction <from> <to> <fraction>")
		}
		f, err := parseFloat(args[4])
		if err != nil {
			return nil, err
		}
		return &wire.FiddleOp{Op: wire.OpSetAirFraction, Strings: []string{machine, args[2], args[3]}, Floats: []float64{f}}, nil
	case "fanflow":
		if len(args) != 3 {
			return nil, fmt.Errorf("usage: <machine> fanflow <cfm>")
		}
		f, err := parseFloat(args[2])
		if err != nil {
			return nil, err
		}
		return &wire.FiddleOp{Op: wire.OpSetFanFlow, Strings: []string{machine}, Floats: []float64{f}}, nil
	case "powerscale":
		if len(args) != 4 {
			return nil, fmt.Errorf("usage: <machine> powerscale <component> <scale>")
		}
		sc, err := parseFloat(args[3])
		if err != nil {
			return nil, err
		}
		return &wire.FiddleOp{Op: wire.OpSetPowerScale, Strings: []string{machine, args[2]}, Floats: []float64{sc}}, nil
	case "power":
		if len(args) != 3 || (args[2] != "on" && args[2] != "off") {
			return nil, fmt.Errorf("usage: <machine> power on|off")
		}
		v := 0.0
		if args[2] == "on" {
			v = 1
		}
		return &wire.FiddleOp{Op: wire.OpSetMachinePower, Strings: []string{machine}, Floats: []float64{v}}, nil
	default:
		return nil, fmt.Errorf("unknown fiddle verb %q", args[1])
	}
}

func parseFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

// Schedule flattens the script into operations stamped with their
// offset from script start. Experiment harnesses use this to interleave
// fiddle actions with emulated time instead of wall-clock sleeps.
func (s *Script) Schedule() []TimedOp {
	var out []TimedOp
	var at time.Duration
	for _, a := range s.Actions {
		if a.Op == nil {
			at += a.Sleep
			continue
		}
		out = append(out, TimedOp{At: at, Op: a.Op})
	}
	return out
}

// Run executes the script against an applier, pausing with sleep.
// Passing time.Sleep reproduces the paper's wall-clock scripts; tests
// pass a virtual sleeper.
func (s *Script) Run(a Applier, sleep func(time.Duration)) error {
	for _, act := range s.Actions {
		if act.Op == nil {
			sleep(act.Sleep)
			continue
		}
		if err := a.Apply(act.Op); err != nil {
			return err
		}
	}
	return nil
}
