// Package fiddle implements the thermal-emergency tool of Section 2.3:
// it "can force the solver to change any constant or temperature
// on-line", letting experiments emulate air-conditioner failures,
// blocked inlets, multi-speed fans, and CPU-driven thermal management.
//
// The package provides three layers: Apply maps a wire.FiddleOp onto a
// running solver; Script parses and runs the paper's shell-like fiddle
// scripts ("sleep 100 / fiddle machine1 temperature inlet 30"); and
// Client sends operations to a remote solver daemon over UDP.
package fiddle

import (
	"fmt"

	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/units"
	"github.com/darklab/mercury/internal/wire"
)

// Applier applies one fiddle operation. Direct (in-process) and Client
// (UDP) both implement it, so scripts run identically against either.
type Applier interface {
	Apply(op *wire.FiddleOp) error
}

// Direct applies operations straight to an in-process solver.
type Direct struct {
	Solver *solver.Solver
}

// Apply implements Applier.
func (d Direct) Apply(op *wire.FiddleOp) error {
	return Apply(d.Solver, op)
}

// Apply executes one validated fiddle operation against a solver.
func Apply(s *solver.Solver, op *wire.FiddleOp) error {
	if err := wire.ValidateFiddle(op); err != nil {
		return err
	}
	str := op.Strings
	fl := op.Floats
	switch op.Op {
	case wire.OpPinInlet:
		return s.PinInlet(str[0], units.Celsius(fl[0]))
	case wire.OpUnpinInlet:
		return s.UnpinInlet(str[0])
	case wire.OpSetNodeTemp:
		return s.SetNodeTemperature(str[0], str[1], units.Celsius(fl[0]))
	case wire.OpSetSourceTemp:
		return s.SetSourceTemperature(str[0], units.Celsius(fl[0]))
	case wire.OpSetHeatK:
		return s.SetHeatK(str[0], str[1], str[2], units.WattsPerKelvin(fl[0]))
	case wire.OpSetAirFraction:
		return s.SetAirFraction(str[0], str[1], str[2], units.Fraction(fl[0]))
	case wire.OpSetFanFlow:
		return s.SetFanFlow(str[0], units.CubicFeetPerMinute(fl[0]))
	case wire.OpSetPowerScale:
		return s.SetPowerScale(str[0], str[1], units.Fraction(fl[0]))
	case wire.OpSetMachinePower:
		return s.SetMachinePower(str[0], fl[0] != 0)
	default:
		return fmt.Errorf("fiddle: unhandled op %s", wire.OpName(op.Op))
	}
}
