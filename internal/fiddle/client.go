package fiddle

import (
	"fmt"
	"time"

	"github.com/darklab/mercury/internal/clock"
	"github.com/darklab/mercury/internal/udprpc"
	"github.com/darklab/mercury/internal/units"
	"github.com/darklab/mercury/internal/wire"
)

// Client sends fiddle operations to a remote solver daemon over UDP
// and waits for acknowledgement.
type Client struct {
	rpc *udprpc.Client
}

// Dial connects to the solver daemon at addr. timeout <= 0 and
// retries <= 0 select the transport defaults.
func Dial(addr string, timeout time.Duration, retries int) (*Client, error) {
	return DialClock(addr, timeout, retries, nil)
}

// DialClock is Dial with an explicit clock for the reply timeouts; nil
// means the real clock.
func DialClock(addr string, timeout time.Duration, retries int, clk clock.Clock) (*Client, error) {
	rpc, err := udprpc.DialClock(addr, timeout, retries, clk)
	if err != nil {
		return nil, fmt.Errorf("fiddle: %w", err)
	}
	return &Client{rpc: rpc}, nil
}

// Apply implements Applier over UDP.
func (c *Client) Apply(op *wire.FiddleOp) error {
	req, err := wire.MarshalFiddleOp(op)
	if err != nil {
		return err
	}
	buf, err := c.rpc.Do(req)
	if err != nil {
		return fmt.Errorf("fiddle: %s: %w", wire.OpName(op.Op), err)
	}
	rep, err := wire.UnmarshalFiddleReply(buf)
	if err != nil {
		return fmt.Errorf("fiddle: %s: %w", wire.OpName(op.Op), err)
	}
	if rep.Status != wire.StatusOK {
		return fmt.Errorf("fiddle: %s rejected: %s", wire.OpName(op.Op), rep.Message)
	}
	return nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.rpc.Close() }

// Convenience wrappers mirroring the solver's fiddle surface.

// PinInlet pins a machine's inlet temperature.
func (c *Client) PinInlet(machine string, t units.Celsius) error {
	return c.Apply(&wire.FiddleOp{Op: wire.OpPinInlet, Strings: []string{machine}, Floats: []float64{float64(t)}})
}

// UnpinInlet releases a machine's inlet pin.
func (c *Client) UnpinInlet(machine string) error {
	return c.Apply(&wire.FiddleOp{Op: wire.OpUnpinInlet, Strings: []string{machine}})
}

// SetSourceTemperature changes a room source's supply temperature.
func (c *Client) SetSourceTemperature(source string, t units.Celsius) error {
	return c.Apply(&wire.FiddleOp{Op: wire.OpSetSourceTemp, Strings: []string{source}, Floats: []float64{float64(t)}})
}

// SetMachinePower powers a machine on or off.
func (c *Client) SetMachinePower(machine string, on bool) error {
	v := 0.0
	if on {
		v = 1
	}
	return c.Apply(&wire.FiddleOp{Op: wire.OpSetMachinePower, Strings: []string{machine}, Floats: []float64{v}})
}
