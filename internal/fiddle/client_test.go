package fiddle

import (
	"net"
	"strings"
	"testing"

	"github.com/darklab/mercury/internal/wire"
)

// fakeSolverd answers fiddle operations, rejecting machines named
// "ghost".
func fakeSolverd(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 2048)
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			op, err := wire.UnmarshalFiddleOp(buf[:n])
			if err != nil {
				continue
			}
			rep := &wire.FiddleReply{Status: wire.StatusOK}
			if len(op.Strings) > 0 && op.Strings[0] == "ghost" {
				rep = &wire.FiddleReply{Status: wire.StatusUnknown, Message: "unknown machine \"ghost\""}
			}
			out, _ := wire.MarshalFiddleReply(rep)
			conn.WriteToUDP(out, peer)
		}
	}()
	return conn.LocalAddr().String()
}

func TestClientConvenienceWrappers(t *testing.T) {
	addr := fakeSolverd(t)
	c, err := Dial(addr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PinInlet("m1", 38.6); err != nil {
		t.Error(err)
	}
	if err := c.UnpinInlet("m1"); err != nil {
		t.Error(err)
	}
	if err := c.SetSourceTemperature("ac", 27); err != nil {
		t.Error(err)
	}
	if err := c.SetMachinePower("m1", true); err != nil {
		t.Error(err)
	}
	if err := c.SetMachinePower("m1", false); err != nil {
		t.Error(err)
	}
}

func TestClientSurfacesRejection(t *testing.T) {
	addr := fakeSolverd(t)
	c, err := Dial(addr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.PinInlet("ghost", 30)
	if err == nil || !strings.Contains(err.Error(), "unknown machine") {
		t.Errorf("rejection = %v", err)
	}
}

func TestClientRejectsInvalidOpLocally(t *testing.T) {
	addr := fakeSolverd(t)
	c, err := Dial(addr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Marshal fails before anything hits the network.
	if err := c.Apply(&wire.FiddleOp{Op: 0x7F}); err == nil {
		t.Error("invalid op: want error")
	}
}

func TestClientTimesOutOnDeadDaemon(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := conn.LocalAddr().String()
	conn.Close()
	c, err := Dial(addr, 10_000_000, 1) // 10ms, 1 try
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PinInlet("m1", 30); err == nil {
		t.Error("dead daemon: want timeout error")
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("::bad::", 0, 0); err == nil {
		t.Error("bad address: want error")
	}
}
