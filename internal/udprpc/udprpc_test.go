package udprpc

import (
	"net"
	"testing"
	"time"
)

// echoServer replies to every datagram after skip initial drops.
func echoServer(t *testing.T, drop int) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 2048)
		dropped := 0
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if dropped < drop {
				dropped++
				continue
			}
			conn.WriteToUDP(buf[:n], peer)
		}
	}()
	return conn.LocalAddr().String()
}

func TestDoEcho(t *testing.T) {
	addr := echoServer(t, 0)
	c, err := Dial(addr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Do([]byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Errorf("reply = %q", got)
	}
}

func TestDoRetriesThroughLoss(t *testing.T) {
	addr := echoServer(t, 2) // first two requests vanish
	c, err := Dial(addr, 50*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Do([]byte("persistent"))
	if err != nil {
		t.Fatalf("retries should have succeeded: %v", err)
	}
	if string(got) != "persistent" {
		t.Errorf("reply = %q", got)
	}
}

func TestDoTimesOut(t *testing.T) {
	// A listener that never replies.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := Dial(conn.LocalAddr().String(), 20*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Do([]byte("void")); err == nil {
		t.Fatal("want timeout error")
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("returned after %v; should have retried twice at 20ms each", elapsed)
	}
}

func TestSend(t *testing.T) {
	addr := echoServer(t, 0)
	c, err := Dial(addr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("oneway")); err != nil {
		t.Fatal(err)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("not-an-address::::", 0, 0); err == nil {
		t.Error("bad address: want error")
	}
}

func TestDefaults(t *testing.T) {
	addr := echoServer(t, 0)
	c, err := Dial(addr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.timeout != DefaultTimeout || c.retries != DefaultRetries {
		t.Errorf("defaults = %v/%d", c.timeout, c.retries)
	}
}
