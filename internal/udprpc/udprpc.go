// Package udprpc provides the small request/reply discipline Mercury's
// UDP clients share: send a datagram, wait for one reply with a
// timeout, retry a bounded number of times.
package udprpc

import (
	"fmt"
	"net"
	"time"
)

// Defaults used when a Client field is zero.
const (
	DefaultTimeout = 250 * time.Millisecond
	DefaultRetries = 3
)

// Client is a connected UDP endpoint with retry behaviour. The zero
// value is unusable; use Dial.
type Client struct {
	conn    *net.UDPConn
	timeout time.Duration
	retries int
}

// Dial connects to a UDP address. timeout <= 0 and retries <= 0 select
// the defaults.
func Dial(addr string, timeout time.Duration, retries int) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udprpc: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("udprpc: %w", err)
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if retries <= 0 {
		retries = DefaultRetries
	}
	return &Client{conn: conn, timeout: timeout, retries: retries}, nil
}

// Do sends req and returns the first reply datagram, retrying on
// timeout. The returned slice is freshly allocated.
func (c *Client) Do(req []byte) ([]byte, error) {
	var lastErr error
	buf := make([]byte, 2048)
	for attempt := 0; attempt < c.retries; attempt++ {
		if _, err := c.conn.Write(req); err != nil {
			return nil, fmt.Errorf("udprpc: send: %w", err)
		}
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("udprpc: %w", err)
		}
		n, err := c.conn.Read(buf)
		if err != nil {
			lastErr = err
			continue
		}
		out := make([]byte, n)
		copy(out, buf[:n])
		return out, nil
	}
	return nil, fmt.Errorf("udprpc: no reply after %d attempts: %w", c.retries, lastErr)
}

// Send transmits a datagram without expecting a reply (monitord's
// fire-and-forget utilization updates).
func (c *Client) Send(req []byte) error {
	if _, err := c.conn.Write(req); err != nil {
		return fmt.Errorf("udprpc: send: %w", err)
	}
	return nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }
