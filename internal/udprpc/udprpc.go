// Package udprpc provides the small request/reply discipline Mercury's
// UDP clients share: send a datagram, wait for one reply with a
// timeout, retry a bounded number of times.
//
// Timeouts are measured on an injectable clock (internal/clock): with
// the default Real clock the behaviour is the classic read-deadline
// loop, while a Virtual clock lets warp-speed emulations drive the
// retry schedule deterministically without waiting out wall-clock
// timeouts.
package udprpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/darklab/mercury/internal/causal"
	"github.com/darklab/mercury/internal/clock"
)

// Defaults used when a Client field is zero.
const (
	DefaultTimeout = 250 * time.Millisecond
	DefaultRetries = 3
)

// ErrTimeout is the per-attempt failure recorded when no reply arrives
// within the timeout; Do wraps it in its final error.
var ErrTimeout = errors.New("reply timeout")

// Client is a connected UDP endpoint with retry behaviour. The zero
// value is unusable; use Dial or DialClock.
type Client struct {
	conn    *net.UDPConn
	timeout time.Duration
	retries int
	clk     clock.Clock
	tracer  *causal.Tracer

	replies   chan []byte
	closed    chan struct{}
	closeOnce sync.Once
}

// SetTracer attaches a causal tracer: DoCtx exchanges performed under
// a trace context then record an rpc span covering the send-to-reply
// interval. Must be called before the client is used.
func (c *Client) SetTracer(t *causal.Tracer) { c.tracer = t }

// Dial connects to a UDP address on the real clock. timeout <= 0 and
// retries <= 0 select the defaults.
func Dial(addr string, timeout time.Duration, retries int) (*Client, error) {
	return DialClock(addr, timeout, retries, clock.Real{})
}

// DialClock is Dial with an explicit clock; reply timeouts elapse in
// that clock's time.
func DialClock(addr string, timeout time.Duration, retries int, clk clock.Clock) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udprpc: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("udprpc: %w", err)
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if retries <= 0 {
		retries = DefaultRetries
	}
	if clk == nil {
		clk = clock.Real{}
	}
	c := &Client{
		conn:    conn,
		timeout: timeout,
		retries: retries,
		clk:     clk,
		replies: make(chan []byte, 16),
		closed:  make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop pumps incoming datagrams into the reply channel so Do can
// race them against clock timeouts instead of socket read deadlines.
func (c *Client) readLoop() {
	buf := make([]byte, 2048)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient read failures (e.g. ICMP port-unreachable
			// surfacing as ECONNREFUSED on a connected socket) are
			// handled like lost datagrams: the retry loop covers them.
			continue
		}
		out := make([]byte, n)
		copy(out, buf[:n])
		select {
		case c.replies <- out:
		default:
			// Reply queue full: drop, as a kernel socket buffer would.
		}
	}
}

// DoCtx is Do under a trace context: when the client has a tracer and
// the context is live, the exchange is recorded as an rpc span (child
// of the context's span) whose Value counts the attempts used.
func (c *Client) DoCtx(tc causal.Context, req []byte) ([]byte, error) {
	if c.tracer == nil || tc.Zero() {
		return c.Do(req)
	}
	begin := c.tracer.Now()
	rep, attempts, err := c.do(req)
	c.tracer.Emit(causal.Span{
		Trace:  tc.Trace,
		Parent: tc.Span,
		Kind:   causal.KindRPC,
		Begin:  begin,
		End:    c.tracer.Now(),
		Value:  float64(attempts),
	})
	return rep, err
}

// Do sends req and returns the first reply datagram, retrying when no
// reply arrives within the client's timeout on its clock. The returned
// slice is freshly allocated.
func (c *Client) Do(req []byte) ([]byte, error) {
	rep, _, err := c.do(req)
	return rep, err
}

func (c *Client) do(req []byte) ([]byte, int, error) {
	// Drop replies from abandoned earlier attempts so a stale datagram
	// is not mistaken for the answer to this request.
	c.drain()
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if _, err := c.conn.Write(req); err != nil {
			return nil, attempt + 1, fmt.Errorf("udprpc: send: %w", err)
		}
		select {
		case rep := <-c.replies:
			return rep, attempt + 1, nil
		case <-c.clk.After(c.timeout):
			lastErr = ErrTimeout
		case <-c.closed:
			return nil, attempt + 1, fmt.Errorf("udprpc: client closed")
		}
	}
	return nil, c.retries, fmt.Errorf("udprpc: no reply after %d attempts: %w", c.retries, lastErr)
}

// drain discards queued replies without blocking.
func (c *Client) drain() {
	for {
		select {
		case <-c.replies:
		default:
			return
		}
	}
}

// Send transmits a datagram without expecting a reply (monitord's
// fire-and-forget utilization updates).
func (c *Client) Send(req []byte) error {
	if _, err := c.conn.Write(req); err != nil {
		return fmt.Errorf("udprpc: send: %w", err)
	}
	return nil
}

// Close releases the socket and stops the reader.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.conn.Close()
	})
	return err
}
