package udprpc

import (
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/darklab/mercury/internal/clock"
)

// countingServer counts requests, drops the first `drop`, and echoes
// the rest.
func countingServer(t *testing.T, drop int) (string, *atomic.Int64) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	var seen atomic.Int64
	go func() {
		buf := make([]byte, 2048)
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if seen.Add(1) <= int64(drop) {
				continue
			}
			conn.WriteToUDP(buf[:n], peer)
		}
	}()
	return conn.LocalAddr().String(), &seen
}

// virtualWaitFor polls cond with a real-time guard so a broken virtual
// schedule fails the test instead of hanging it.
func virtualWaitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDoVirtualTimeRetries drives the retry schedule purely with
// virtual advances: two timeouts elapse without a millisecond of
// wall-clock waiting, and the third attempt succeeds.
func TestDoVirtualTimeRetries(t *testing.T) {
	addr, seen := countingServer(t, 2)
	clk := clock.NewVirtual()
	c, err := DialClock(addr, time.Second, 3, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type result struct {
		rep []byte
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := c.Do([]byte("stubborn"))
		done <- result{rep, err}
	}()

	for attempt := 1; attempt <= 2; attempt++ {
		virtualWaitFor(t, func() bool {
			return seen.Load() >= int64(attempt) && clk.Waiters() == 1
		})
		clk.Advance(time.Second) // expire this attempt's reply timeout
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("Do after virtual retries: %v", res.err)
	}
	if string(res.rep) != "stubborn" {
		t.Errorf("reply = %q", res.rep)
	}
	if got := seen.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	if clk.Elapsed() != 2*time.Second {
		t.Errorf("virtual elapsed = %v, want exactly 2s (two timeouts)", clk.Elapsed())
	}
}

func TestDoVirtualTimeExhaustsRetries(t *testing.T) {
	// A listener that never replies.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	clk := clock.NewVirtual()
	c, err := DialClock(conn.LocalAddr().String(), time.Second, 2, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Do([]byte("void"))
		done <- err
	}()
	for attempt := 0; attempt < 2; attempt++ {
		virtualWaitFor(t, func() bool { return clk.Waiters() == 1 })
		clk.Advance(time.Second)
	}
	err = <-done
	if err == nil {
		t.Fatal("want timeout error")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("error = %v, want ErrTimeout in chain", err)
	}
	if !strings.Contains(err.Error(), "2 attempts") {
		t.Errorf("error = %v, want attempt count", err)
	}
}

func TestDoAfterClose(t *testing.T) {
	addr, _ := countingServer(t, 0)
	c, err := Dial(addr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if _, err := c.Do([]byte("late")); err == nil {
		t.Error("Do on closed client: want error")
	}
}
