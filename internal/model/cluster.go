package model

import (
	"fmt"

	"github.com/darklab/mercury/internal/units"
)

// ClusterSource is an air source at the machine-room level, typically
// an air conditioner: its supply temperature is pinned (and may be
// changed at run time with fiddle to emulate a cooling failure).
type ClusterSource struct {
	// Name identifies the source, e.g. "ac".
	Name string
	// SupplyTemp is the temperature of the air the source delivers.
	SupplyTemp units.Celsius
}

// ClusterSink is an air sink at the machine-room level, typically the
// return plenum ("Cluster Exhaust" in Figure 1c).
type ClusterSink struct {
	Name string
}

// ClusterEdge is a directed air connection at the room level. From and
// To name a source, a sink, or a machine: a machine appearing as From
// contributes its exhaust air; a machine appearing as To receives the
// air at its inlet.
//
// Fraction is interpreted on both sides of the edge: on the From side
// it is the share of the origin's output carried by the edge (shares
// leaving a machine must sum to 1); on the To side the solver mixes a
// machine's inlet as the fraction-weighted average of its incoming
// edges, normalized per destination — the paper's "perfect mixing ...
// weighted average of the incoming-edge air temperatures and
// fractions".
type ClusterEdge struct {
	From, To string
	Fraction units.Fraction
}

// Cluster is a machine-room thermal model: a set of machines plus the
// room-level air-flow graph of Figure 1(c).
type Cluster struct {
	Name     string
	Machines []*Machine
	Sources  []ClusterSource
	Sinks    []ClusterSink
	Edges    []ClusterEdge
}

// Machine returns the named machine, or nil.
func (c *Cluster) Machine(name string) *Machine {
	for _, m := range c.Machines {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Source returns the named source, or nil.
func (c *Cluster) Source(name string) *ClusterSource {
	for i := range c.Sources {
		if c.Sources[i].Name == name {
			return &c.Sources[i]
		}
	}
	return nil
}

// Validate checks the cluster's invariants: valid machines with unique
// names, unique source/sink names disjoint from machine names, edges
// connecting known vertices in legal directions (sources only send,
// sinks only receive, machines both), every machine receiving at least
// one incoming edge, every machine's outgoing fractions summing to 1,
// and at least one source and one sink.
func (c *Cluster) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("model: cluster has no name")
	}
	if len(c.Machines) == 0 {
		return fmt.Errorf("model: cluster %s has no machines", c.Name)
	}
	if len(c.Sources) == 0 {
		return fmt.Errorf("model: cluster %s has no air sources", c.Name)
	}
	if len(c.Sinks) == 0 {
		return fmt.Errorf("model: cluster %s has no air sinks", c.Name)
	}
	kind := map[string]string{} // name -> "machine"|"source"|"sink"
	for _, m := range c.Machines {
		if err := m.Validate(); err != nil {
			return err
		}
		if _, dup := kind[m.Name]; dup {
			return fmt.Errorf("model: cluster %s: duplicate vertex name %q", c.Name, m.Name)
		}
		kind[m.Name] = "machine"
	}
	for _, s := range c.Sources {
		if err := validName(s.Name); err != nil {
			return fmt.Errorf("model: cluster %s: %w", c.Name, err)
		}
		if _, dup := kind[s.Name]; dup {
			return fmt.Errorf("model: cluster %s: duplicate vertex name %q", c.Name, s.Name)
		}
		if !s.SupplyTemp.Valid() {
			return fmt.Errorf("model: cluster %s: source %q has invalid supply temperature", c.Name, s.Name)
		}
		kind[s.Name] = "source"
	}
	for _, s := range c.Sinks {
		if err := validName(s.Name); err != nil {
			return fmt.Errorf("model: cluster %s: %w", c.Name, err)
		}
		if _, dup := kind[s.Name]; dup {
			return fmt.Errorf("model: cluster %s: duplicate vertex name %q", c.Name, s.Name)
		}
		kind[s.Name] = "sink"
	}

	in := map[string]float64{}
	out := map[string]float64{}
	for _, e := range c.Edges {
		kf, okF := kind[e.From]
		kt, okT := kind[e.To]
		if !okF || !okT {
			return fmt.Errorf("model: cluster %s: edge %s->%s references unknown vertex", c.Name, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("model: cluster %s: edge %s->%s is a self-loop", c.Name, e.From, e.To)
		}
		if kf == "sink" {
			return fmt.Errorf("model: cluster %s: edge %s->%s flows out of a sink", c.Name, e.From, e.To)
		}
		if kt == "source" {
			return fmt.Errorf("model: cluster %s: edge %s->%s flows into a source", c.Name, e.From, e.To)
		}
		if !e.Fraction.Valid() || e.Fraction == 0 {
			return fmt.Errorf("model: cluster %s: edge %s->%s has invalid fraction %v", c.Name, e.From, e.To, float64(e.Fraction))
		}
		out[e.From] += float64(e.Fraction)
		in[e.To] += float64(e.Fraction)
	}
	const tol = 1e-6
	for _, m := range c.Machines {
		if in[m.Name] == 0 {
			return fmt.Errorf("model: cluster %s: machine %q receives no air", c.Name, m.Name)
		}
		sum := out[m.Name]
		if sum < 1-tol || sum > 1+tol {
			return fmt.Errorf("model: cluster %s: machine %q outgoing fractions sum to %.6f, want 1", c.Name, m.Name, sum)
		}
	}
	return nil
}

// MachineTopoOrder returns the machines in a topological order of the
// room-level graph restricted to machine->machine (recirculation)
// edges, so the solver can propagate exhaust air to downstream inlets
// within one step. An error is returned when recirculation edges form
// a cycle; such clusters are still solvable (the solver falls back to
// previous-step exhaust temperatures) but callers that require
// same-step propagation should reject them.
func (c *Cluster) MachineTopoOrder() ([]string, error) {
	isMachine := map[string]bool{}
	for _, m := range c.Machines {
		isMachine[m.Name] = true
	}
	indeg := map[string]int{}
	adj := map[string][]string{}
	for _, m := range c.Machines {
		indeg[m.Name] = 0
	}
	for _, e := range c.Edges {
		if isMachine[e.From] && isMachine[e.To] {
			adj[e.From] = append(adj[e.From], e.To)
			indeg[e.To]++
		}
	}
	var queue, order []string
	for _, m := range c.Machines {
		if indeg[m.Name] == 0 {
			queue = append(queue, m.Name)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, to := range adj[n] {
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(c.Machines) {
		return nil, fmt.Errorf("model: cluster %s: recirculation edges form a cycle", c.Name)
	}
	return order, nil
}
