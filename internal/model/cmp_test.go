package model

import (
	"math"
	"testing"
)

func TestCMPServerValidates(t *testing.T) {
	for _, cores := range []int{1, 2, 4, 16} {
		m, err := CMPServer("m", cores)
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if m.Component(NodeCPU) != nil {
			t.Error("lumped CPU still present")
		}
		if m.Component(NodeChip) == nil {
			t.Error("chip node missing")
		}
		for i := 0; i < cores; i++ {
			if m.Component(CoreNode(i)) == nil {
				t.Errorf("core %d missing", i)
			}
		}
	}
	if _, err := CMPServer("m", 0); err == nil {
		t.Error("0 cores: want error")
	}
	if _, err := CMPServer("m", 65); err == nil {
		t.Error("65 cores: want error")
	}
}

func TestCMPBudgetsMatchLumpedCPU(t *testing.T) {
	m, err := CMPServer("m", 4)
	if err != nil {
		t.Fatal(err)
	}
	var totalMass, totalBase, totalMax float64
	totalMass = float64(m.Component(NodeChip).Mass)
	for i := 0; i < 4; i++ {
		c := m.Component(CoreNode(i))
		totalMass += float64(c.Mass)
		totalBase += float64(c.Power.Base())
		totalMax += float64(c.Power.Max())
	}
	if math.Abs(totalMass-0.151) > 1e-9 {
		t.Errorf("total package mass = %v, want 0.151", totalMass)
	}
	if math.Abs(totalBase-7) > 1e-9 || math.Abs(totalMax-31) > 1e-9 {
		t.Errorf("total power = %v..%v, want 7..31", totalBase, totalMax)
	}
}

func TestCMPHelpers(t *testing.T) {
	if CoreNode(3) != "core3" {
		t.Errorf("CoreNode = %q", CoreNode(3))
	}
	if CoreUtil(3) != UtilSource("cpu3") {
		t.Errorf("CoreUtil = %q", CoreUtil(3))
	}
}
