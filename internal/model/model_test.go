package model

import (
	"strings"
	"testing"

	"github.com/darklab/mercury/internal/thermo"
	"github.com/darklab/mercury/internal/units"
)

func TestDefaultServerValidates(t *testing.T) {
	m := DefaultServer("machine1")
	if err := m.Validate(); err != nil {
		t.Fatalf("DefaultServer does not validate: %v", err)
	}
}

func TestDefaultServerTable1Constants(t *testing.T) {
	m := DefaultServer("m")
	cases := []struct {
		node string
		mass units.Kilograms
		c    units.JoulesPerKgK
	}{
		{NodeDiskPlatters, 0.336, 896},
		{NodeDiskShell, 0.505, 896},
		{NodeCPU, 0.151, 896},
		{NodePowerSupply, 1.643, 896},
		{NodeMotherboard, 0.718, 1245},
	}
	for _, tc := range cases {
		c := m.Component(tc.node)
		if c == nil {
			t.Fatalf("missing component %q", tc.node)
		}
		if c.Mass != tc.mass {
			t.Errorf("%s mass = %v, want %v", tc.node, c.Mass, tc.mass)
		}
		if c.SpecificHeat != tc.c {
			t.Errorf("%s specific heat = %v, want %v", tc.node, c.SpecificHeat, tc.c)
		}
	}
	if m.InletTemp != 21.6 {
		t.Errorf("inlet temp = %v, want 21.6", m.InletTemp)
	}
	if m.FanFlow != 38.6 {
		t.Errorf("fan flow = %v, want 38.6", m.FanFlow)
	}
	cpu := m.Component(NodeCPU)
	if cpu.Power.Base() != 7 || cpu.Power.Max() != 31 {
		t.Errorf("CPU power = (%v,%v), want (7,31)", cpu.Power.Base(), cpu.Power.Max())
	}
	dp := m.Component(NodeDiskPlatters)
	if dp.Power.Base() != 9 || dp.Power.Max() != 14 {
		t.Errorf("disk power = (%v,%v), want (9,14)", dp.Power.Base(), dp.Power.Max())
	}
	ps := m.Component(NodePowerSupply)
	if ps.Power.Base() != 40 || ps.Power.Max() != 40 {
		t.Errorf("PS power = (%v,%v), want (40,40)", ps.Power.Base(), ps.Power.Max())
	}
}

func TestDefaultServerAirFractionsConserveFlow(t *testing.T) {
	// The DAG must deliver exactly the inlet flow to the exhaust.
	m := DefaultServer("m")
	order, err := m.AirTopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	flow := map[string]float64{NodeInlet: 1}
	for _, n := range order {
		for _, e := range m.AirEdges {
			if e.From == n {
				flow[e.To] += flow[n] * float64(e.Fraction)
			}
		}
	}
	if got := flow[NodeExhaust]; got < 1-1e-9 || got > 1+1e-9 {
		t.Errorf("exhaust flow = %v, want 1.0", got)
	}
}

func TestAirTopoOrderStartsAtInlet(t *testing.T) {
	m := DefaultServer("m")
	order, err := m.AirTopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != NodeInlet {
		t.Errorf("topo order starts with %q, want inlet", order[0])
	}
	// Every edge must go forward in the order.
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range m.AirEdges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %s->%s not respected by topo order", e.From, e.To)
		}
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	m := DefaultServer("m")
	// disk_air_ds -> disk_air creates a 2-cycle; also breaks fraction
	// sums, so reset disk_air's outgoing to split.
	m.AirEdges = append(m.AirEdges, AirEdge{From: NodeDiskAirDS, To: NodeDiskAir, Fraction: 1})
	err := m.Validate()
	if err == nil {
		t.Fatal("cycle not caught")
	}
}

func TestValidateFractionSum(t *testing.T) {
	m := DefaultServer("m")
	for i := range m.AirEdges {
		if m.AirEdges[i].From == NodeInlet && m.AirEdges[i].To == NodeDiskAir {
			m.AirEdges[i].Fraction = 0.3 // was 0.4; inlet now sums to 0.9
		}
	}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "sum") {
		t.Fatalf("bad fraction sum not caught: %v", err)
	}
}

func TestValidateRejectsBadStructures(t *testing.T) {
	type mut func(*Machine)
	cases := []struct {
		name string
		mut  mut
	}{
		{"no name", func(m *Machine) { m.Name = "" }},
		{"whitespace name", func(m *Machine) { m.Name = "m 1" }},
		{"dup component", func(m *Machine) { m.Components = append(m.Components, m.Components[0]) }},
		{"zero mass", func(m *Machine) { m.Components[0].Mass = 0 }},
		{"negative mass", func(m *Machine) { m.Components[0].Mass = -1 }},
		{"zero specific heat", func(m *Machine) { m.Components[0].SpecificHeat = 0 }},
		{"bad power range", func(m *Machine) { m.Components[0].Power = thermo.Linear{PBase: 10, PMax: 5} }},
		{"no inlet", func(m *Machine) {
			for i := range m.AirNodes {
				m.AirNodes[i].Inlet = false
			}
		}},
		{"two inlets", func(m *Machine) { m.AirNodes[1].Inlet = true }},
		{"no exhaust", func(m *Machine) {
			for i := range m.AirNodes {
				m.AirNodes[i].Exhaust = false
			}
		}},
		{"inlet is exhaust", func(m *Machine) { m.AirNodes[0].Exhaust = true }},
		{"zero fan flow", func(m *Machine) { m.FanFlow = 0 }},
		{"invalid inlet temp", func(m *Machine) { m.InletTemp = -400 }},
		{"heat edge unknown node", func(m *Machine) {
			m.HeatEdges = append(m.HeatEdges, HeatEdge{A: "ghost", B: NodeCPU, K: 1})
		}},
		{"heat edge self loop", func(m *Machine) {
			m.HeatEdges = append(m.HeatEdges, HeatEdge{A: NodeCPU, B: NodeCPU, K: 1})
		}},
		{"negative k", func(m *Machine) { m.HeatEdges[0].K = -1 }},
		{"air edge into inlet", func(m *Machine) {
			m.AirEdges = append(m.AirEdges, AirEdge{From: NodeCPUAir, To: NodeInlet, Fraction: 0.1})
		}},
		{"air edge out of exhaust", func(m *Machine) {
			m.AirEdges = append(m.AirEdges, AirEdge{From: NodeExhaust, To: NodeCPUAir, Fraction: 0.1})
		}},
		{"air edge zero fraction", func(m *Machine) { m.AirEdges[0].Fraction = 0 }},
		{"air edge fraction above one", func(m *Machine) { m.AirEdges[0].Fraction = 1.5 }},
		{"air edge unknown node", func(m *Machine) {
			m.AirEdges = append(m.AirEdges, AirEdge{From: "ghost", To: NodeCPUAir, Fraction: 0.1})
		}},
		{"air edge to component", func(m *Machine) {
			m.AirEdges = append(m.AirEdges, AirEdge{From: NodeInlet, To: NodeCPU, Fraction: 0.1})
		}},
		{"bad node name", func(m *Machine) { m.Components[0].Name = "bad name!" }},
	}
	for _, tc := range cases {
		m := DefaultServer("m")
		tc.mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := DefaultServer("a")
	b := a.Clone("b")
	if b.Name != "b" {
		t.Errorf("clone name = %q", b.Name)
	}
	b.Components[0].Mass = 99
	b.AirEdges[0].Fraction = 0.123
	b.HeatEdges[0].K = 42
	if a.Components[0].Mass == 99 || a.AirEdges[0].Fraction == 0.123 || a.HeatEdges[0].K == 42 {
		t.Error("mutating clone affected original")
	}
	if err := b.Validate(); err == nil {
		t.Error("mutated clone should now fail validation (fraction sums)")
	}
}

func TestComponentLookup(t *testing.T) {
	m := DefaultServer("m")
	if m.Component("nope") != nil {
		t.Error("Component(nope) != nil")
	}
	if m.AirNode("nope") != nil {
		t.Error("AirNode(nope) != nil")
	}
	if m.AirNode(NodeCPUAir) == nil {
		t.Error("AirNode(cpu_air) == nil")
	}
	if m.Inlet() != NodeInlet {
		t.Errorf("Inlet() = %q", m.Inlet())
	}
	ex := m.Exhausts()
	if len(ex) != 1 || ex[0] != NodeExhaust {
		t.Errorf("Exhausts() = %v", ex)
	}
}

func TestNodeNamesSorted(t *testing.T) {
	m := DefaultServer("m")
	names := m.NodeNames()
	if len(names) != len(m.Components)+len(m.AirNodes) {
		t.Fatalf("NodeNames() has %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("NodeNames() not sorted: %v", names)
		}
	}
}

func TestThermalMassOfComponent(t *testing.T) {
	m := DefaultServer("m")
	cpu := m.Component(NodeCPU)
	want := units.Joules(0.151 * 896)
	if got := cpu.ThermalMass(); got != want {
		t.Errorf("CPU thermal mass = %v, want %v", got, want)
	}
}
