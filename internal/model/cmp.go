package model

import (
	"fmt"

	"github.com/darklab/mercury/internal/thermo"
	"github.com/darklab/mercury/internal/units"
)

// CMP node-name helpers.
const (
	// NodeChip is the shared die/heat-spreader node of a CMP server.
	NodeChip = "chip"
)

// CoreNode returns the node name of core i of a CMP server.
func CoreNode(i int) string { return fmt.Sprintf("core%d", i) }

// CoreUtil returns the utilization source that drives core i.
func CoreUtil(i int) UtilSource { return UtilSource(fmt.Sprintf("cpu%d", i)) }

// CMPServer builds the validation server with its CPU replaced by a
// two-level chip-multiprocessor model, the extension Section 7 of the
// paper sketches ("the emulation of chip multiprocessors ... will
// probably have to be done in two levels, for each core and the entire
// chip"): per-core die nodes, each driven by its own utilization
// stream (cpu0..cpuN-1), couple into a shared chip/heat-spreader node,
// which couples to the CPU air exactly as the lumped CPU did.
//
// The budgets match Table 1's package: the cores together idle at 7 W
// and peak at 31 W, the total thermal mass equals the original
// CPU-plus-sink, and the chip-to-air constant stays 0.75 W/K — so a
// CMP server with all cores at equal utilization behaves like the
// lumped machine at that utilization, while imbalanced loads expose
// per-core hot spots.
func CMPServer(name string, cores int) (*Machine, error) {
	if cores < 1 || cores > 64 {
		return nil, fmt.Errorf("model: CMP core count %d outside 1..64", cores)
	}
	m := DefaultServer(name)

	// Remove the lumped CPU and its heat edges.
	var comps []Component
	for _, c := range m.Components {
		if c.Name != NodeCPU {
			comps = append(comps, c)
		}
	}
	m.Components = comps
	var edges []HeatEdge
	for _, e := range m.HeatEdges {
		if e.A != NodeCPU && e.B != NodeCPU {
			edges = append(edges, e)
		}
	}
	m.HeatEdges = edges

	t := Table1
	// The chip/heat-spreader carries most of the package's thermal
	// mass; the core dies split the remainder.
	const coreMassShare = 0.15
	chipMass := t.CPUMass * units.Kilograms(1-coreMassShare)
	coreMass := t.CPUMass * units.Kilograms(coreMassShare) / units.Kilograms(cores)

	m.Components = append(m.Components, Component{
		Name:         NodeChip,
		Mass:         chipMass,
		SpecificHeat: units.AluminumSpecificHeat,
	})
	m.HeatEdges = append(m.HeatEdges,
		HeatEdge{A: NodeChip, B: NodeCPUAir, K: t.KCPUAir},
		HeatEdge{A: NodeMotherboard, B: NodeChip, K: t.KMotherboardCPU},
	)

	base := t.CPUPower.PBase / units.Watts(cores)
	max := t.CPUPower.PMax / units.Watts(cores)
	// Core-to-chip coupling: dies sit directly on the spreader, so the
	// per-core constant is high; scaling with core count keeps the
	// aggregate coupling constant.
	coreK := units.WattsPerKelvin(8.0 / float64(cores))
	for i := 0; i < cores; i++ {
		m.Components = append(m.Components, Component{
			Name:         CoreNode(i),
			Mass:         coreMass,
			SpecificHeat: units.AluminumSpecificHeat,
			Power:        thermo.Linear{PBase: base, PMax: max},
			Util:         CoreUtil(i),
		})
		m.HeatEdges = append(m.HeatEdges, HeatEdge{A: CoreNode(i), B: NodeChip, K: coreK})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
