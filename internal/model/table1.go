package model

import (
	"fmt"

	"github.com/darklab/mercury/internal/thermo"
	"github.com/darklab/mercury/internal/units"
)

// Canonical node names of the validation server (Figure 1a/1b).
const (
	NodeDiskPlatters = "disk_platters"
	NodeDiskShell    = "disk_shell"
	NodeCPU          = "cpu"
	NodePowerSupply  = "power_supply"
	NodeMotherboard  = "motherboard"

	NodeInlet     = "inlet"
	NodeDiskAir   = "disk_air"
	NodeDiskAirDS = "disk_air_ds"
	NodePSAir     = "ps_air"
	NodePSAirDS   = "ps_air_ds"
	NodeVoidAir   = "void_air"
	NodeCPUAir    = "cpu_air"
	NodeCPUAirDS  = "cpu_air_ds"
	NodeExhaust   = "exhaust"
)

// Canonical cluster vertex names (Figure 1c).
const (
	NodeAC             = "ac"
	NodeClusterExhaust = "cluster_exhaust"
)

// Table1 holds the constants of Table 1 of the paper: the physical
// description of the Pentium III validation server used throughout the
// Mercury validation and the Freon studies.
var Table1 = struct {
	DiskPlattersMass units.Kilograms
	DiskShellMass    units.Kilograms
	CPUMass          units.Kilograms
	PowerSupplyMass  units.Kilograms
	MotherboardMass  units.Kilograms

	DiskPower        thermo.Linear
	CPUPower         thermo.Linear
	PowerSupplyPower units.Watts
	MotherboardPower units.Watts

	InletTemp units.Celsius
	FanFlow   units.CubicFeetPerMinute

	KDiskPlattersShell units.WattsPerKelvin
	KDiskShellAir      units.WattsPerKelvin
	KCPUAir            units.WattsPerKelvin
	KPowerSupplyAir    units.WattsPerKelvin
	KMotherboardAir    units.WattsPerKelvin
	KMotherboardCPU    units.WattsPerKelvin
}{
	DiskPlattersMass: 0.336,
	DiskShellMass:    0.505,
	CPUMass:          0.151,
	PowerSupplyMass:  1.643,
	MotherboardMass:  0.718,

	DiskPower:        thermo.Linear{PBase: 9, PMax: 14},
	CPUPower:         thermo.Linear{PBase: 7, PMax: 31},
	PowerSupplyPower: 40,
	MotherboardPower: 4,

	InletTemp: 21.6,
	FanFlow:   38.6,

	KDiskPlattersShell: 2.0,
	KDiskShellAir:      1.9,
	KCPUAir:            0.75,
	KPowerSupplyAir:    4,
	KMotherboardAir:    10,
	KMotherboardCPU:    0.1,
}

// DefaultServer builds the thermal model of the validation server:
// the heat-flow graph of Figure 1(a), the air-flow graph of Figure
// 1(b), and the constants of Table 1. The returned machine validates
// cleanly and is the starting point for calibration.
func DefaultServer(name string) *Machine {
	t := Table1
	return &Machine{
		Name: name,
		Components: []Component{
			{Name: NodeDiskPlatters, Mass: t.DiskPlattersMass, SpecificHeat: units.AluminumSpecificHeat,
				Power: t.DiskPower, Util: UtilDisk},
			{Name: NodeDiskShell, Mass: t.DiskShellMass, SpecificHeat: units.AluminumSpecificHeat},
			{Name: NodeCPU, Mass: t.CPUMass, SpecificHeat: units.AluminumSpecificHeat,
				Power: t.CPUPower, Util: UtilCPU},
			{Name: NodePowerSupply, Mass: t.PowerSupplyMass, SpecificHeat: units.AluminumSpecificHeat,
				Power: thermo.Constant(t.PowerSupplyPower)},
			{Name: NodeMotherboard, Mass: t.MotherboardMass, SpecificHeat: units.FR4SpecificHeat,
				Power: thermo.Constant(t.MotherboardPower)},
		},
		AirNodes: []AirNode{
			{Name: NodeInlet, Inlet: true},
			{Name: NodeDiskAir},
			{Name: NodeDiskAirDS},
			{Name: NodePSAir},
			{Name: NodePSAirDS},
			{Name: NodeVoidAir},
			{Name: NodeCPUAir},
			{Name: NodeCPUAirDS},
			{Name: NodeExhaust, Exhaust: true},
		},
		HeatEdges: []HeatEdge{
			{A: NodeDiskPlatters, B: NodeDiskShell, K: t.KDiskPlattersShell},
			{A: NodeDiskShell, B: NodeDiskAir, K: t.KDiskShellAir},
			{A: NodeCPU, B: NodeCPUAir, K: t.KCPUAir},
			{A: NodePowerSupply, B: NodePSAir, K: t.KPowerSupplyAir},
			{A: NodeMotherboard, B: NodeVoidAir, K: t.KMotherboardAir},
			{A: NodeMotherboard, B: NodeCPU, K: t.KMotherboardCPU},
		},
		AirEdges: []AirEdge{
			{From: NodeInlet, To: NodeDiskAir, Fraction: 0.4},
			{From: NodeInlet, To: NodePSAir, Fraction: 0.5},
			{From: NodeInlet, To: NodeVoidAir, Fraction: 0.1},
			{From: NodeDiskAir, To: NodeDiskAirDS, Fraction: 1.0},
			{From: NodeDiskAirDS, To: NodeVoidAir, Fraction: 1.0},
			{From: NodePSAir, To: NodePSAirDS, Fraction: 1.0},
			{From: NodePSAirDS, To: NodeVoidAir, Fraction: 0.85},
			{From: NodePSAirDS, To: NodeCPUAir, Fraction: 0.15},
			{From: NodeVoidAir, To: NodeCPUAir, Fraction: 0.05},
			{From: NodeVoidAir, To: NodeExhaust, Fraction: 0.95},
			{From: NodeCPUAir, To: NodeCPUAirDS, Fraction: 1.0},
			{From: NodeCPUAirDS, To: NodeExhaust, Fraction: 1.0},
		},
		InletTemp: t.InletTemp,
		FanFlow:   t.FanFlow,
	}
}

// DefaultCluster builds the Figure 1(c) machine room: n identical
// validation servers named machine1..machineN fed by a single air
// conditioner with equal shares, all exhausting into one return plenum.
// There is no recirculation, matching the paper's "ideal situation".
func DefaultCluster(name string, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("model: cluster needs at least 1 machine, got %d", n)
	}
	c := &Cluster{
		Name:    name,
		Sources: []ClusterSource{{Name: NodeAC, SupplyTemp: Table1.InletTemp}},
		Sinks:   []ClusterSink{{Name: NodeClusterExhaust}},
	}
	share := units.Fraction(1.0 / float64(n))
	for i := 1; i <= n; i++ {
		mname := fmt.Sprintf("machine%d", i)
		c.Machines = append(c.Machines, DefaultServer(mname))
		c.Edges = append(c.Edges,
			ClusterEdge{From: NodeAC, To: mname, Fraction: share},
			ClusterEdge{From: mname, To: NodeClusterExhaust, Fraction: 1},
		)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
