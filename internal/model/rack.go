package model

import (
	"fmt"

	"github.com/darklab/mercury/internal/units"
)

// RackMachine returns the machine name at a rack position (1-based
// rack and height; height 1 is the bottom of the rack).
func RackMachine(rack, height int) string {
	return fmt.Sprintf("rack%dpos%d", rack, height)
}

// RackCluster builds a machine room with air recirculation inside each
// rack: a share of every machine's exhaust feeds the inlet of the
// machine above it, growing with height — the cause of the "hot spots
// at the top sections of computer racks" the paper's introduction
// lists among thermal emergencies. The AC supplies the remainder of
// every inlet.
//
// recirc[h] is the share of the inlet of the machine at height h+2
// that comes from the exhaust below it (height 1 draws only AC air),
// so len(recirc) must be perRack-1 and every value must lie in [0, 1).
// A nil recirc selects the default profile 0.15, 0.25, 0.35, ...
// capped at 0.45.
func RackCluster(name string, racks, perRack int, recirc []units.Fraction) (*Cluster, error) {
	if racks < 1 || perRack < 1 {
		return nil, fmt.Errorf("model: rack cluster needs at least 1 rack and 1 machine, got %dx%d", racks, perRack)
	}
	if recirc == nil {
		recirc = make([]units.Fraction, perRack-1)
		for i := range recirc {
			f := 0.15 + 0.10*float64(i)
			if f > 0.45 {
				f = 0.45
			}
			recirc[i] = units.Fraction(f)
		}
	}
	if len(recirc) != perRack-1 {
		return nil, fmt.Errorf("model: need %d recirculation fractions for %d machines per rack, got %d",
			perRack-1, perRack, len(recirc))
	}
	for i, f := range recirc {
		if !f.Valid() || f >= 1 {
			return nil, fmt.Errorf("model: recirculation fraction %d = %v outside [0,1)", i, float64(f))
		}
	}

	c := &Cluster{
		Name:    name,
		Sources: []ClusterSource{{Name: NodeAC, SupplyTemp: Table1.InletTemp}},
		Sinks:   []ClusterSink{{Name: NodeClusterExhaust}},
	}
	// One edge per physical flow. Its fraction does double duty: it is
	// the share of the origin machine's exhaust (out-fractions per
	// machine must sum to 1) and the relative weight of the
	// destination's intake mix. Choosing the recirculated intake share
	// s as the edge fraction and 1-s for the AC edge satisfies both
	// sides at once.
	for r := 1; r <= racks; r++ {
		for h := 1; h <= perRack; h++ {
			mname := RackMachine(r, h)
			c.Machines = append(c.Machines, DefaultServer(mname))

			if h == 1 {
				c.Edges = append(c.Edges, ClusterEdge{From: NodeAC, To: mname, Fraction: 1})
			} else {
				share := recirc[h-2]
				if share > 0 {
					c.Edges = append(c.Edges,
						ClusterEdge{From: NodeAC, To: mname, Fraction: 1 - share},
						ClusterEdge{From: RackMachine(r, h-1), To: mname, Fraction: share},
					)
				} else {
					c.Edges = append(c.Edges, ClusterEdge{From: NodeAC, To: mname, Fraction: 1})
				}
			}

			// Exhaust split: the share feeding the machine above is the
			// same edge added by that machine's intake loop, so here we
			// only add the room-return remainder.
			up := units.Fraction(0)
			if h < perRack {
				up = recirc[h-1]
			}
			c.Edges = append(c.Edges, ClusterEdge{From: mname, To: NodeClusterExhaust, Fraction: 1 - up})
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// RackRegions maps every machine of a RackCluster to its rack number,
// the natural Freon-EC region assignment ("common thermal emergencies
// will likely affect all servers of a region").
func RackRegions(racks, perRack int) map[string]int {
	out := map[string]int{}
	for r := 1; r <= racks; r++ {
		for h := 1; h <= perRack; h++ {
			out[RackMachine(r, h)] = r
		}
	}
	return out
}
