package model

import (
	"strings"
	"testing"
)

func TestDefaultClusterValidates(t *testing.T) {
	for _, n := range []int{1, 2, 4, 16} {
		c, err := DefaultCluster("room", n)
		if err != nil {
			t.Fatalf("DefaultCluster(%d): %v", n, err)
		}
		if len(c.Machines) != n {
			t.Errorf("DefaultCluster(%d) has %d machines", n, len(c.Machines))
		}
	}
	if _, err := DefaultCluster("room", 0); err == nil {
		t.Error("DefaultCluster(0): want error")
	}
}

func TestDefaultClusterFigure1c(t *testing.T) {
	c, err := DefaultCluster("room", 4)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: AC -> each machine 0.25; machine -> cluster exhaust 1.0.
	acOut := 0
	for _, e := range c.Edges {
		if e.From == NodeAC {
			acOut++
			if e.Fraction != 0.25 {
				t.Errorf("AC->%s fraction = %v, want 0.25", e.To, float64(e.Fraction))
			}
		}
		if e.To == NodeClusterExhaust && e.Fraction != 1 {
			t.Errorf("%s->exhaust fraction = %v, want 1", e.From, float64(e.Fraction))
		}
	}
	if acOut != 4 {
		t.Errorf("AC has %d outgoing edges, want 4", acOut)
	}
	if src := c.Source(NodeAC); src == nil || src.SupplyTemp != 21.6 {
		t.Errorf("AC supply temp = %+v, want 21.6", src)
	}
}

func TestClusterLookups(t *testing.T) {
	c, _ := DefaultCluster("room", 2)
	if c.Machine("machine2") == nil {
		t.Error("Machine(machine2) == nil")
	}
	if c.Machine("machine9") != nil {
		t.Error("Machine(machine9) != nil")
	}
	if c.Source("nope") != nil {
		t.Error("Source(nope) != nil")
	}
}

func TestClusterValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Cluster)
	}{
		{"no name", func(c *Cluster) { c.Name = "" }},
		{"no machines", func(c *Cluster) { c.Machines = nil }},
		{"no sources", func(c *Cluster) { c.Sources = nil }},
		{"no sinks", func(c *Cluster) { c.Sinks = nil }},
		{"dup vertex", func(c *Cluster) { c.Sources = append(c.Sources, ClusterSource{Name: "machine1", SupplyTemp: 20}) }},
		{"invalid supply temp", func(c *Cluster) { c.Sources[0].SupplyTemp = -300 }},
		{"edge unknown vertex", func(c *Cluster) {
			c.Edges = append(c.Edges, ClusterEdge{From: "ghost", To: "machine1", Fraction: 0.5})
		}},
		{"edge out of sink", func(c *Cluster) {
			c.Edges = append(c.Edges, ClusterEdge{From: NodeClusterExhaust, To: "machine1", Fraction: 0.5})
		}},
		{"edge into source", func(c *Cluster) {
			c.Edges = append(c.Edges, ClusterEdge{From: "machine1", To: NodeAC, Fraction: 0.5})
		}},
		{"zero fraction", func(c *Cluster) { c.Edges[0].Fraction = 0 }},
		{"machine no intake", func(c *Cluster) {
			var kept []ClusterEdge
			for _, e := range c.Edges {
				if e.To != "machine1" {
					kept = append(kept, e)
				}
			}
			c.Edges = kept
		}},
		{"machine out sum", func(c *Cluster) {
			for i := range c.Edges {
				if c.Edges[i].From == "machine1" {
					c.Edges[i].Fraction = 0.5
				}
			}
		}},
		{"invalid machine", func(c *Cluster) { c.Machines[0].FanFlow = 0 }},
	}
	for _, tc := range cases {
		c, err := DefaultCluster("room", 2)
		if err != nil {
			t.Fatal(err)
		}
		tc.mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func TestMachineTopoOrderNoRecirculation(t *testing.T) {
	c, _ := DefaultCluster("room", 4)
	order, err := c.MachineTopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Errorf("topo order has %d machines", len(order))
	}
}

func TestMachineTopoOrderWithRecirculation(t *testing.T) {
	c, _ := DefaultCluster("room", 2)
	// machine1 exhaust partially recirculates into machine2's inlet.
	for i := range c.Edges {
		if c.Edges[i].From == "machine1" && c.Edges[i].To == NodeClusterExhaust {
			c.Edges[i].Fraction = 0.9
		}
	}
	c.Edges = append(c.Edges, ClusterEdge{From: "machine1", To: "machine2", Fraction: 0.1})
	if err := c.Validate(); err != nil {
		t.Fatalf("recirculating cluster should validate: %v", err)
	}
	order, err := c.MachineTopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "machine1" || order[1] != "machine2" {
		t.Errorf("topo order = %v, want machine1 before machine2", order)
	}

	// Close the loop: now a cycle.
	for i := range c.Edges {
		if c.Edges[i].From == "machine2" && c.Edges[i].To == NodeClusterExhaust {
			c.Edges[i].Fraction = 0.9
		}
	}
	c.Edges = append(c.Edges, ClusterEdge{From: "machine2", To: "machine1", Fraction: 0.1})
	if _, err := c.MachineTopoOrder(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}
