// Package model defines the thermal model that the Mercury solver
// emulates: machines made of hardware components and air regions,
// connected by undirected heat-flow edges and directed air-flow edges
// (Figure 1 of the paper), plus cluster-level air flow between machines
// and the machine-room air conditioner.
//
// The package is purely declarative — it holds the graphs and the
// physical constants of Table 1 and validates them; package solver
// compiles a validated model into its time-stepping representation.
package model

import (
	"fmt"
	"sort"
	"strings"

	"github.com/darklab/mercury/internal/thermo"
	"github.com/darklab/mercury/internal/units"
)

// UtilSource names the utilization stream that drives a component's
// power model: the monitoring daemon samples one value per source per
// interval (CPU, disk, network), and the solver feeds it to every
// component configured with that source.
type UtilSource string

// Utilization sources understood by monitord.
const (
	// UtilNone marks components whose power does not follow any
	// utilization stream (power supply, motherboard).
	UtilNone UtilSource = ""
	// UtilCPU follows processor utilization.
	UtilCPU UtilSource = "cpu"
	// UtilDisk follows disk utilization.
	UtilDisk UtilSource = "disk"
	// UtilNet follows network-interface utilization.
	UtilNet UtilSource = "net"
)

// Component is a hardware part with thermal mass and a power model:
// a vertex of the heat-flow graph (Figure 1a).
type Component struct {
	// Name identifies the component within its machine, e.g. "cpu",
	// "disk_platters". Names are case-sensitive and must be unique
	// across components and air nodes of a machine.
	Name string
	// Mass is the component's mass. Must be positive.
	Mass units.Kilograms
	// SpecificHeat is the component's specific heat capacity. Must be
	// positive.
	SpecificHeat units.JoulesPerKgK
	// Power maps utilization to power draw. Use thermo.Constant for
	// parts with utilization-independent draw, or nil for parts that
	// dissipate no power themselves (e.g. the disk shell).
	Power thermo.PowerModel
	// Util selects which utilization stream drives Power. Ignored when
	// Power is nil or constant.
	Util UtilSource
}

// ThermalMass returns the energy required to warm the component 1 K.
func (c Component) ThermalMass() units.Joules {
	return thermo.ThermalMass(c.Mass, c.SpecificHeat)
}

// AirNode is an air region inside a machine: a vertex of the air-flow
// graph (Figure 1b) and, through heat edges, of the heat-flow graph.
type AirNode struct {
	// Name identifies the air region, e.g. "inlet", "cpu_air".
	Name string
	// Inlet marks the machine's air intake: its temperature is pinned
	// to the machine inlet temperature (which the cluster graph or
	// fiddle may change) and it receives the full fan flow.
	Inlet bool
	// Exhaust marks the machine's air outlet: its temperature is
	// visible to the cluster-level graph.
	Exhaust bool
}

// HeatEdge is an undirected heat-flow connection between two nodes
// (components or air regions) with the lumped transfer constant k of
// Equation 2.
type HeatEdge struct {
	A, B string
	K    units.WattsPerKelvin
}

// AirEdge is a directed air-flow connection: Fraction of the air
// leaving From flows into To.
type AirEdge struct {
	From, To string
	Fraction units.Fraction
}

// Machine is a single server's thermal model: Figure 1(a) and 1(b)
// plus the constants of Table 1.
type Machine struct {
	// Name identifies the machine within a cluster, e.g. "machine1".
	Name string
	// Components are the heat-flow vertices with thermal mass.
	Components []Component
	// AirNodes are the air regions.
	AirNodes []AirNode
	// HeatEdges connect components and air regions.
	HeatEdges []HeatEdge
	// AirEdges connect air regions, inlet to exhaust.
	AirEdges []AirEdge
	// InletTemp is the machine's inlet air temperature when the machine
	// is not embedded in a cluster graph (Table 1: 21.6 C).
	InletTemp units.Celsius
	// FanFlow is the volumetric flow the fan pulls through the inlet
	// (Table 1: 38.6 cfm).
	FanFlow units.CubicFeetPerMinute
}

// Component returns the named component, or nil.
func (m *Machine) Component(name string) *Component {
	for i := range m.Components {
		if m.Components[i].Name == name {
			return &m.Components[i]
		}
	}
	return nil
}

// AirNode returns the named air region, or nil.
func (m *Machine) AirNode(name string) *AirNode {
	for i := range m.AirNodes {
		if m.AirNodes[i].Name == name {
			return &m.AirNodes[i]
		}
	}
	return nil
}

// NodeNames returns the sorted names of all nodes (components and air
// regions) in the machine.
func (m *Machine) NodeNames() []string {
	names := make([]string, 0, len(m.Components)+len(m.AirNodes))
	for _, c := range m.Components {
		names = append(names, c.Name)
	}
	for _, a := range m.AirNodes {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// Validate checks the machine's structural and physical invariants:
// unique names, edges referencing existing nodes, exactly one inlet,
// at least one exhaust, an acyclic air graph reaching every non-inlet
// air node, per-node outgoing fractions summing to at most 1 (and
// exactly 1 for nodes that have any outgoing edge, within tolerance),
// positive masses and heat capacities, non-negative k constants, and a
// positive fan flow.
func (m *Machine) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("model: machine has no name")
	}
	if strings.ContainsAny(m.Name, " \t\n") {
		return fmt.Errorf("model: machine name %q contains whitespace", m.Name)
	}
	seen := map[string]bool{}
	for _, c := range m.Components {
		if err := validName(c.Name); err != nil {
			return fmt.Errorf("model: machine %s: %w", m.Name, err)
		}
		if seen[c.Name] {
			return fmt.Errorf("model: machine %s: duplicate node name %q", m.Name, c.Name)
		}
		seen[c.Name] = true
		if c.Mass <= 0 {
			return fmt.Errorf("model: machine %s: component %q has non-positive mass %v", m.Name, c.Name, c.Mass)
		}
		if c.SpecificHeat <= 0 {
			return fmt.Errorf("model: machine %s: component %q has non-positive specific heat %v", m.Name, c.Name, c.SpecificHeat)
		}
		if c.Power != nil {
			if c.Power.Base() < 0 || c.Power.Max() < c.Power.Base() {
				return fmt.Errorf("model: machine %s: component %q has invalid power range %v..%v",
					m.Name, c.Name, c.Power.Base(), c.Power.Max())
			}
		}
	}
	inlets, exhausts := 0, 0
	for _, a := range m.AirNodes {
		if err := validName(a.Name); err != nil {
			return fmt.Errorf("model: machine %s: %w", m.Name, err)
		}
		if seen[a.Name] {
			return fmt.Errorf("model: machine %s: duplicate node name %q", m.Name, a.Name)
		}
		seen[a.Name] = true
		if a.Inlet {
			inlets++
		}
		if a.Exhaust {
			exhausts++
		}
		if a.Inlet && a.Exhaust {
			return fmt.Errorf("model: machine %s: air node %q is both inlet and exhaust", m.Name, a.Name)
		}
	}
	if inlets != 1 {
		return fmt.Errorf("model: machine %s: need exactly 1 inlet air node, have %d", m.Name, inlets)
	}
	if exhausts < 1 {
		return fmt.Errorf("model: machine %s: need at least 1 exhaust air node", m.Name)
	}
	if m.FanFlow <= 0 {
		return fmt.Errorf("model: machine %s: non-positive fan flow %v", m.Name, m.FanFlow)
	}
	if !m.InletTemp.Valid() {
		return fmt.Errorf("model: machine %s: invalid inlet temperature %v", m.Name, m.InletTemp)
	}

	for _, e := range m.HeatEdges {
		if !seen[e.A] || !seen[e.B] {
			return fmt.Errorf("model: machine %s: heat edge %s--%s references unknown node", m.Name, e.A, e.B)
		}
		if e.A == e.B {
			return fmt.Errorf("model: machine %s: heat edge %s--%s is a self-loop", m.Name, e.A, e.B)
		}
		if e.K < 0 {
			return fmt.Errorf("model: machine %s: heat edge %s--%s has negative k %v", m.Name, e.A, e.B, e.K)
		}
	}

	air := map[string]*AirNode{}
	for i := range m.AirNodes {
		air[m.AirNodes[i].Name] = &m.AirNodes[i]
	}
	out := map[string]float64{}
	indeg := map[string]int{}
	for _, e := range m.AirEdges {
		from, okF := air[e.From]
		to, okT := air[e.To]
		if !okF || !okT {
			return fmt.Errorf("model: machine %s: air edge %s->%s must connect air nodes", m.Name, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("model: machine %s: air edge %s->%s is a self-loop", m.Name, e.From, e.To)
		}
		if !e.Fraction.Valid() || e.Fraction == 0 {
			return fmt.Errorf("model: machine %s: air edge %s->%s has invalid fraction %v", m.Name, e.From, e.To, float64(e.Fraction))
		}
		if to.Inlet {
			return fmt.Errorf("model: machine %s: air edge %s->%s flows into the inlet", m.Name, e.From, e.To)
		}
		if from.Exhaust {
			return fmt.Errorf("model: machine %s: air edge %s->%s flows out of an exhaust", m.Name, e.From, e.To)
		}
		out[e.From] += float64(e.Fraction)
		indeg[e.To]++
	}
	const tol = 1e-6
	for _, a := range m.AirNodes {
		sum, has := out[a.Name]
		if a.Exhaust {
			continue
		}
		if !has {
			return fmt.Errorf("model: machine %s: air node %q has no outgoing flow and is not an exhaust", m.Name, a.Name)
		}
		if sum < 1-tol || sum > 1+tol {
			return fmt.Errorf("model: machine %s: air node %q outgoing fractions sum to %.6f, want 1", m.Name, a.Name, sum)
		}
		if !a.Inlet && indeg[a.Name] == 0 {
			return fmt.Errorf("model: machine %s: air node %q has no incoming flow and is not the inlet", m.Name, a.Name)
		}
	}
	if _, err := m.AirTopoOrder(); err != nil {
		return err
	}
	return nil
}

// AirTopoOrder returns the air nodes in a topological order of the
// air-flow DAG (inlet first), or an error if the graph has a cycle.
// The solver processes air regions in this order so each region mixes
// the temperatures its upstream regions computed in the same step.
func (m *Machine) AirTopoOrder() ([]string, error) {
	indeg := map[string]int{}
	adj := map[string][]string{}
	for _, a := range m.AirNodes {
		indeg[a.Name] = 0
	}
	for _, e := range m.AirEdges {
		adj[e.From] = append(adj[e.From], e.To)
		indeg[e.To]++
	}
	// Deterministic order: seed the queue in declaration order.
	var queue []string
	for _, a := range m.AirNodes {
		if indeg[a.Name] == 0 {
			queue = append(queue, a.Name)
		}
	}
	var order []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, to := range adj[n] {
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(m.AirNodes) {
		return nil, fmt.Errorf("model: machine %s: air-flow graph has a cycle", m.Name)
	}
	return order, nil
}

// Inlet returns the machine's inlet air node name. The machine must be
// valid.
func (m *Machine) Inlet() string {
	for _, a := range m.AirNodes {
		if a.Inlet {
			return a.Name
		}
	}
	return ""
}

// Exhausts returns the machine's exhaust air node names in declaration
// order.
func (m *Machine) Exhausts() []string {
	var names []string
	for _, a := range m.AirNodes {
		if a.Exhaust {
			names = append(names, a.Name)
		}
	}
	return names
}

// Clone returns a deep copy of the machine with the given name.
// Cloning lets one description stamp out the identical servers of a
// cluster ("replicating these traces allows Mercury to emulate large
// cluster installations").
func (m *Machine) Clone(name string) *Machine {
	c := &Machine{
		Name:       name,
		Components: append([]Component(nil), m.Components...),
		AirNodes:   append([]AirNode(nil), m.AirNodes...),
		HeatEdges:  append([]HeatEdge(nil), m.HeatEdges...),
		AirEdges:   append([]AirEdge(nil), m.AirEdges...),
		InletTemp:  m.InletTemp,
		FanFlow:    m.FanFlow,
	}
	return c
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("empty node name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("node name %q contains invalid character %q", name, r)
		}
	}
	return nil
}
