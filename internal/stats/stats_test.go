package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("cpu")
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) || !math.IsNaN(s.Mean()) || !math.IsNaN(s.Last()) {
		t.Error("empty series stats should be NaN")
	}
	s.Add(0, 10)
	s.Add(sec(10), 20)
	s.Add(sec(20), 15)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Min() != 10 || s.Max() != 20 || s.Last() != 15 {
		t.Errorf("min/max/last = %v/%v/%v", s.Min(), s.Max(), s.Last())
	}
	if s.Mean() != 15 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 0)
	s.Add(sec(10), 100)
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{-sec(5), 0},   // clamp before
		{0, 0},         // exact
		{sec(5), 50},   // interpolated
		{sec(10), 100}, // exact end
		{sec(50), 100}, // clamp after
		{sec(2.5), 25}, // interpolated
	}
	for _, tc := range cases {
		if got := s.At(tc.t); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if !math.IsNaN(NewSeries("e").At(0)) {
		t.Error("empty At should be NaN")
	}
}

func TestSeriesAtInterpolationBounds(t *testing.T) {
	// Interpolated values never escape the convex hull of neighbors.
	s := NewSeries("x")
	s.Add(0, 3)
	s.Add(sec(1), 7)
	s.Add(sec(2), 5)
	f := func(ms uint16) bool {
		at := time.Duration(ms) * time.Millisecond * 2 // 0..131s
		v := s.At(at)
		return v >= 3-1e-9 && v <= 7+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSorted(t *testing.T) {
	s := NewSeries("x")
	s.Add(sec(10), 1)
	s.Add(0, 2)
	s.Add(sec(5), 3)
	s.Sorted()
	if s.Points[0].At != 0 || s.Points[2].At != sec(10) {
		t.Errorf("not sorted: %+v", s.Points)
	}
}

func TestCompareSeries(t *testing.T) {
	em := NewSeries("emulated")
	ref := NewSeries("real")
	for i := 0; i <= 10; i++ {
		em.Add(sec(float64(i)), float64(i)+0.5) // constant +0.5 bias
		ref.Add(sec(float64(i)), float64(i))
	}
	c := CompareSeries(em, ref)
	if c.N != 11 {
		t.Errorf("N = %d", c.N)
	}
	if math.Abs(c.MaxAbs-0.5) > 1e-9 || math.Abs(c.RMSE-0.5) > 1e-9 || math.Abs(c.MeanAbs-0.5) > 1e-9 {
		t.Errorf("compare = %+v", c)
	}
	if !strings.Contains(c.String(), "maxabs=0.500") {
		t.Errorf("String = %q", c.String())
	}
}

func TestCompareSeriesIdentical(t *testing.T) {
	a := NewSeries("a")
	for i := 0; i < 5; i++ {
		a.Add(sec(float64(i)), math.Sin(float64(i)))
	}
	c := CompareSeries(a, a)
	if c.RMSE != 0 || c.MaxAbs != 0 {
		t.Errorf("self-compare = %+v", c)
	}
}

func TestCompareSeriesEmptyReference(t *testing.T) {
	a := NewSeries("a")
	a.Add(0, 1)
	c := CompareSeries(a, NewSeries("empty"))
	if c.N != 0 {
		t.Errorf("N = %d, want 0 (nothing comparable)", c.N)
	}
}

func TestChartRender(t *testing.T) {
	s1 := NewSeries("emulated")
	s2 := NewSeries("real")
	for i := 0; i <= 100; i++ {
		s1.Add(sec(float64(i)), 20+10*math.Sin(float64(i)/10))
		s2.Add(sec(float64(i)), 20.5+10*math.Sin(float64(i)/10))
	}
	c := &Chart{Title: "Figure 7", YLabel: "C", Series: []*Series{s1, s2}}
	out := c.Render()
	for _, want := range []string{"Figure 7", "* emulated", "+ real", "0s", "100s"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 16 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if !strings.Contains(c.Render(), "(no data)") {
		t.Error("empty chart should say so")
	}
}

func TestChartFlatSeries(t *testing.T) {
	s := NewSeries("flat")
	s.Add(0, 5)
	s.Add(sec(10), 5)
	out := (&Chart{Series: []*Series{s}}).Render()
	if !strings.Contains(out, "*") {
		t.Error("flat series not drawn")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "Steady state",
		Headers: []string{"cpu_w", "disk_w", "mercury", "fluent", "delta"},
	}
	tb.AddRow(31.0, 14.0, 76.312, 76.25, 0.062)
	tb.AddRow(7.0, 9.0, 35.0, 35.1, -0.10)
	out := tb.Render()
	for _, want := range []string{"Steady state", "| cpu_w", "| 76.312", "| -0.1 "} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data row has the same length.
	var lens []int
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		lens = append(lens, len(line))
	}
	for _, l := range lens {
		if l != lens[0] {
			t.Errorf("ragged table:\n%s", out)
			break
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("x,y", 1.5)
	tb.AddRow(`say "hi"`, 2)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",1.5\n\"say \"\"hi\"\"\",2\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}
