package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Chart renders one or more series as an ASCII line chart, the
// harness's stand-in for the paper's figures. Each series gets a
// distinct glyph; axes are labeled with the value range and the time
// range. Series are downsampled to the chart width by averaging.
type Chart struct {
	Title  string
	Width  int // plot columns; default 72
	Height int // plot rows; default 16
	YLabel string
	Series []*Series
}

var chartGlyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c *Chart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 72
	}
	height := c.Height
	if height <= 0 {
		height = 16
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	var t0, t1 time.Duration = 1<<62 - 1, 0
	for _, s := range c.Series {
		if s.Len() == 0 {
			continue
		}
		lo = math.Min(lo, s.Min())
		hi = math.Max(hi, s.Max())
		if s.Points[0].At < t0 {
			t0 = s.Points[0].At
		}
		if s.Points[s.Len()-1].At > t1 {
			t1 = s.Points[s.Len()-1].At
		}
	}
	if math.IsInf(lo, 1) {
		return b.String() + "(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	for si, s := range c.Series {
		glyph := chartGlyphs[si%len(chartGlyphs)]
		for col := 0; col < width; col++ {
			at := t0 + time.Duration(float64(span)*float64(col)/float64(width-1))
			v := s.At(at)
			if math.IsNaN(v) {
				continue
			}
			row := int((hi - v) / (hi - lo) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = glyph
		}
	}
	yTop := fmt.Sprintf("%8.2f", hi)
	yBot := fmt.Sprintf("%8.2f", lo)
	for i, row := range grid {
		label := strings.Repeat(" ", 8)
		switch i {
		case 0:
			label = yTop
		case height - 1:
			label = yBot
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-12s%s%12s\n", strings.Repeat(" ", 8),
		fmtDur(t0), strings.Repeat(" ", max(0, width-24)), fmtDur(t1))
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", chartGlyphs[si%len(chartGlyphs)], s.Name)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%gs", d.Seconds())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table renders aligned plain-text tables, the stand-in for the
// paper's tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Render draws the table.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(row []string) {
		cells := make([]string, cols)
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			cells[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(&b, "| %s |\n", strings.Join(cells, " | "))
	}
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		fmt.Fprintf(&b, "|-%s-|\n", strings.Join(sep, "-|-"))
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values for downstream
// plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(row []string) {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = esc(c)
		}
		b.WriteString(strings.Join(parts, ","))
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
