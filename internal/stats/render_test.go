package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestChartEmptySeries(t *testing.T) {
	// A chart whose series all have zero points must degrade to the
	// no-data placeholder rather than produce Inf axis labels.
	c := &Chart{Title: "hollow", Series: []*Series{NewSeries("a"), NewSeries("b")}}
	out := c.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("want no-data placeholder, got:\n%s", out)
	}
	if strings.Contains(out, "Inf") {
		t.Errorf("axis labels leaked Inf:\n%s", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	// One point means zero value range and zero time span; both
	// divisions must be guarded.
	s := NewSeries("flat")
	s.Add(10*time.Second, 42)
	c := &Chart{Series: []*Series{s}}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
	if !strings.Contains(out, "42.00") {
		t.Errorf("value missing from axis labels:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "NaN") {
			t.Fatalf("NaN leaked into render: %q", line)
		}
	}
}

func TestChartNaNValues(t *testing.T) {
	// NaN samples are skipped, not plotted at row 0.
	s := NewSeries("gappy")
	s.Add(0, 1)
	s.Add(10*time.Second, math.NaN())
	s.Add(20*time.Second, 3)
	c := &Chart{Width: 20, Height: 5, Series: []*Series{s}}
	out := c.Render()
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into render:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("real points not plotted:\n%s", out)
	}
}

func TestChartMixedEmptyAndFull(t *testing.T) {
	empty := NewSeries("empty")
	full := NewSeries("full")
	full.Add(0, 1)
	full.Add(time.Minute, 2)
	c := &Chart{Series: []*Series{empty, full}}
	out := c.Render()
	// Both legends print; the empty series plots nothing but must not
	// disturb the axis range of the full one.
	if !strings.Contains(out, "empty") || !strings.Contains(out, "full") {
		t.Errorf("legend missing a series:\n%s", out)
	}
	if !strings.Contains(out, "2.00") || !strings.Contains(out, "1.00") {
		t.Errorf("axis range wrong:\n%s", out)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{4, 1, 3, 2, 5} // unsorted on purpose
	cases := []struct {
		q, want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.125, 1.5}, // interpolates between order statistics
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// The input slice must not be reordered.
	if vals[0] != 4 || vals[4] != 5 {
		t.Errorf("input mutated: %v", vals)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty input: want NaN")
	}
	if !math.IsNaN(Quantile([]float64{1}, -0.1)) || !math.IsNaN(Quantile([]float64{1}, 1.1)) {
		t.Error("out-of-range q: want NaN")
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single value: got %v, want 7", got)
	}
	// NaN samples are ignored, not propagated.
	if got := Quantile([]float64{math.NaN(), 2, math.NaN(), 4}, 0.5); got != 3 {
		t.Errorf("NaN filtering: got %v, want 3", got)
	}
	if !math.IsNaN(Quantile([]float64{math.NaN()}, 0.5)) {
		t.Error("all-NaN input: want NaN")
	}
}
