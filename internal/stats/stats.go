// Package stats provides the small time-series and reporting toolkit
// the experiment harness uses: sampled series, error metrics between
// an emulated and a reference series (the paper's "within 1 degree C"
// claims), and plain-text chart/table rendering so every figure of the
// evaluation can be regenerated on a terminal and diffed in CI.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is an append-only sampled signal.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample. Samples should be appended in time order;
// Sorted() can repair out-of-order insertion.
func (s *Series) Add(at time.Duration, v float64) {
	s.Points = append(s.Points, Point{At: at, Value: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Sorted returns the series sorted by time (stable; in place).
func (s *Series) Sorted() *Series {
	sort.SliceStable(s.Points, func(i, j int) bool { return s.Points[i].At < s.Points[j].At })
	return s
}

// At linearly interpolates the series at time t. Outside the sampled
// range it clamps to the first/last value. It returns NaN for an empty
// series.
func (s *Series) At(t time.Duration) float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	pts := s.Points
	if t <= pts[0].At {
		return pts[0].Value
	}
	if t >= pts[len(pts)-1].At {
		return pts[len(pts)-1].Value
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].At >= t })
	a, b := pts[i-1], pts[i]
	if b.At == t || b.At == a.At {
		return b.Value
	}
	frac := float64(t-a.At) / float64(b.At-a.At)
	return a.Value + frac*(b.Value-a.Value)
}

// Min returns the smallest value (NaN if empty).
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	m := s.Points[0].Value
	for _, p := range s.Points[1:] {
		if p.Value < m {
			m = p.Value
		}
	}
	return m
}

// Max returns the largest value (NaN if empty).
func (s *Series) Max() float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	m := s.Points[0].Value
	for _, p := range s.Points[1:] {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values (NaN if empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// Last returns the final value (NaN if empty).
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	return s.Points[len(s.Points)-1].Value
}

// Quantile returns the q-quantile of values (0 <= q <= 1) using
// linear interpolation between order statistics, the same estimate
// spreadsheets and numpy default to. The input need not be sorted and
// is not modified; NaN values are ignored. It returns NaN for an
// empty (or all-NaN) input or an out-of-range q. Telemetry histogram
// and ring-buffer summaries reuse this for their p50/p95/p99 lines.
func Quantile(values []float64, q float64) float64 {
	if q < 0 || q > 1 {
		return math.NaN()
	}
	clean := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	pos := q * float64(len(clean)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return clean[lo]
	}
	frac := pos - float64(lo)
	return clean[lo] + frac*(clean[hi]-clean[lo])
}

// Compare holds error metrics between an emulated series and a
// reference series, evaluated at the emulated series' sample times.
type Compare struct {
	RMSE    float64
	MaxAbs  float64
	MeanAbs float64
	N       int
}

// CompareSeries evaluates emulated-vs-reference error at every sample
// of the emulated series (interpolating the reference).
func CompareSeries(emulated, reference *Series) Compare {
	var c Compare
	var sumSq, sumAbs float64
	for _, p := range emulated.Points {
		ref := reference.At(p.At)
		if math.IsNaN(ref) {
			continue
		}
		d := p.Value - ref
		sumSq += d * d
		a := math.Abs(d)
		sumAbs += a
		if a > c.MaxAbs {
			c.MaxAbs = a
		}
		c.N++
	}
	if c.N > 0 {
		c.RMSE = math.Sqrt(sumSq / float64(c.N))
		c.MeanAbs = sumAbs / float64(c.N)
	}
	return c
}

// String formats the comparison for experiment output.
func (c Compare) String() string {
	return fmt.Sprintf("n=%d rmse=%.3f maxabs=%.3f meanabs=%.3f", c.N, c.RMSE, c.MaxAbs, c.MeanAbs)
}
