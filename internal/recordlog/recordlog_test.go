package recordlog

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/darklab/mercury/internal/causal"
	"github.com/darklab/mercury/internal/clock"
	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/telemetry"
	"github.com/darklab/mercury/internal/units"
	"github.com/darklab/mercury/internal/wire"
)

func tempPath(t testing.TB) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.mrl")
}

func TestHeaderRoundTrip(t *testing.T) {
	path := tempPath(t)
	clk := clock.NewVirtual()
	clk.Advance(0) // epoch at virtual t=0
	w, err := Create(path, "solver-r3", clk)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	h := log.Header
	if h.Version != Version {
		t.Errorf("version = %d, want %d", h.Version, Version)
	}
	if h.Node != "solver-r3" {
		t.Errorf("node = %q, want solver-r3", h.Node)
	}
	if !h.Virtual() {
		t.Error("virtual-clock flag not set for a clock.Virtual writer")
	}
	if got := h.Epoch.UnixNano(); got != 0 {
		t.Errorf("epoch = %d ns, want 0 (virtual t=0)", got)
	}
	if len(log.Formats) != len(formats) {
		t.Errorf("decoded %d format descriptors, want %d", len(log.Formats), len(formats))
	}
	for i, f := range log.Formats {
		if f != formats[i] {
			t.Errorf("format %d = %+v, want %+v", i, f, formats[i])
		}
	}
}

// randomized record generators, deterministic per seed.

func randString(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func randEvent(rng *rand.Rand) telemetry.Event {
	return telemetry.Event{
		Seq:     rng.Uint64(),
		At:      time.Duration(rng.Int63()),
		Type:    telemetry.EventType(randString(rng, strType-1)),
		Machine: randString(rng, strMachine-1),
		Node:    randString(rng, strNode-1),
		Value:   rng.NormFloat64(),
		Detail:  randString(rng, strDetail-1),
	}
}

func randSpan(rng *rand.Rand) causal.Span {
	begin := time.Duration(rng.Int63n(1 << 40))
	return causal.Span{
		Seq:     rng.Uint64(),
		Trace:   rng.Uint64(),
		ID:      rng.Uint64(),
		Parent:  rng.Uint64(),
		Kind:    causal.Kind(randString(rng, strKind-1)),
		Begin:   begin,
		End:     begin + time.Duration(rng.Int63n(1<<30)),
		Machine: randString(rng, strMachine-1),
		Node:    randString(rng, strNode-1),
		Value:   rng.NormFloat64(),
		Step:    rng.Uint64(),
	}
}

// TestRoundTripRandom is the round-trip property test: N random
// records of every type written through the full ring + drain + file
// path read back identical, in order.
func TestRoundTripRandom(t *testing.T) {
	const N = 500
	rng := rand.New(rand.NewSource(11))
	path := tempPath(t)
	clk := clock.NewVirtual()
	w, err := Create(path, "prop", clk, WithRingSize(4096))
	if err != nil {
		t.Fatal(err)
	}

	var wantEvents []telemetry.Event
	var wantSpans []causal.Span
	var wantUtils []UtilRecord
	var wantFiddles []FiddleRecord
	var wantRows []TempRow
	var wantBounds []BoundaryRecord

	probes := []telemetry.TempProbe{{Machine: "m1", Node: "cpu"}, {Machine: "m2", Node: "inlet"}}
	w.SetProbes(probes)
	w.RecordMeta(time.Second, 7)

	for i := 0; i < N; i++ {
		clk.Advance(time.Duration(rng.Intn(3)) * time.Millisecond)
		at := clk.Elapsed()
		switch rng.Intn(6) {
		case 0:
			e := randEvent(rng)
			wantEvents = append(wantEvents, e)
			w.RecordEvent(e)
		case 1:
			s := randSpan(rng)
			wantSpans = append(wantSpans, s)
			w.RecordSpan(s)
		case 2:
			entries := make([]wire.UtilEntry, 1+rng.Intn(utilMaxEntries))
			for j := range entries {
				entries[j] = wire.UtilEntry{
					Source: model.UtilSource(randString(rng, strSource-1)),
					Util:   units.Fraction(rng.Float64()),
				}
			}
			u := UtilRecord{
				Tick:    rng.Uint64(),
				At:      at,
				Seq:     rng.Uint32(),
				Machine: randString(rng, strMachine-1),
				Entries: entries,
			}
			wantUtils = append(wantUtils, u)
			w.RecordUtil(u.Tick, u.Machine, u.Seq, entries)
		case 3:
			op := wire.FiddleOp{Op: byte(rng.Intn(256))}
			for j := rng.Intn(fiddleMaxStrings + 1); j > 0; j-- {
				op.Strings = append(op.Strings, randString(rng, strMachine-1))
			}
			for j := rng.Intn(fiddleMaxFloats + 1); j > 0; j-- {
				op.Floats = append(op.Floats, rng.NormFloat64())
			}
			wantFiddles = append(wantFiddles, FiddleRecord{Tick: uint64(i), At: at, Op: op})
			w.RecordFiddle(uint64(i), &op)
		case 4:
			// Rows longer than one chunk exercise reassembly.
			vals := make([]float64, 1+rng.Intn(3*tempChunk))
			for j := range vals {
				vals[j] = rng.NormFloat64()
			}
			wantRows = append(wantRows, TempRow{At: at, Temps: vals})
			w.RecordTempRow(at, vals)
		case 5:
			n := 1 + rng.Intn(2*boundaryChunk)
			idx := make([]int32, n)
			temps := make([]float64, n)
			for j := range idx {
				idx[j] = rng.Int31()
				temps[j] = rng.NormFloat64()
			}
			wantBounds = append(wantBounds, BoundaryRecord{Tick: uint64(i), Region: 3, Index: idx, Temps: temps})
			w.RecordBoundary(uint64(i), 3, idx, temps)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Drops() != 0 {
		t.Fatalf("dropped %d records with an oversized ring", w.Drops())
	}
	if w.Truncated() != 0 {
		t.Fatalf("truncated %d fields; generators should fit every slot", w.Truncated())
	}

	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated {
		t.Error("log reports a truncated tail after a clean Close")
	}
	if log.Step != time.Second || log.Machines != 7 {
		t.Errorf("meta = (%v, %d), want (1s, 7)", log.Step, log.Machines)
	}
	if len(log.Probes) != len(probes) {
		t.Fatalf("probes = %d, want %d", len(log.Probes), len(probes))
	}
	for i := range probes {
		if log.Probes[i] != probes[i] {
			t.Errorf("probe %d = %+v, want %+v", i, log.Probes[i], probes[i])
		}
	}
	if len(log.Events) != len(wantEvents) {
		t.Fatalf("events = %d, want %d", len(log.Events), len(wantEvents))
	}
	for i := range wantEvents {
		if log.Events[i] != wantEvents[i] {
			t.Fatalf("event %d = %+v, want %+v", i, log.Events[i], wantEvents[i])
		}
	}
	if len(log.Spans) != len(wantSpans) {
		t.Fatalf("spans = %d, want %d", len(log.Spans), len(wantSpans))
	}
	for i := range wantSpans {
		if log.Spans[i] != wantSpans[i] {
			t.Fatalf("span %d = %+v, want %+v", i, log.Spans[i], wantSpans[i])
		}
	}
	var gotUtils []UtilRecord
	var gotFiddles []FiddleRecord
	for _, in := range log.Inputs {
		switch {
		case in.Util != nil:
			gotUtils = append(gotUtils, *in.Util)
		case in.Fiddle != nil:
			gotFiddles = append(gotFiddles, *in.Fiddle)
		}
	}
	if len(gotUtils) != len(wantUtils) {
		t.Fatalf("utils = %d, want %d", len(gotUtils), len(wantUtils))
	}
	for i := range wantUtils {
		got, want := gotUtils[i], wantUtils[i]
		if got.Tick != want.Tick || got.At != want.At || got.Seq != want.Seq || got.Machine != want.Machine {
			t.Fatalf("util %d = %+v, want %+v", i, got, want)
		}
		if len(got.Entries) != len(want.Entries) {
			t.Fatalf("util %d entries = %d, want %d", i, len(got.Entries), len(want.Entries))
		}
		for j := range want.Entries {
			if got.Entries[j] != want.Entries[j] {
				t.Fatalf("util %d entry %d = %+v, want %+v", i, j, got.Entries[j], want.Entries[j])
			}
		}
	}
	if len(gotFiddles) != len(wantFiddles) {
		t.Fatalf("fiddles = %d, want %d", len(gotFiddles), len(wantFiddles))
	}
	for i := range wantFiddles {
		got, want := gotFiddles[i], wantFiddles[i]
		if got.Tick != want.Tick || got.At != want.At || got.Op.Op != want.Op.Op ||
			len(got.Op.Strings) != len(want.Op.Strings) || len(got.Op.Floats) != len(want.Op.Floats) {
			t.Fatalf("fiddle %d = %+v, want %+v", i, got, want)
		}
		for j := range want.Op.Strings {
			if got.Op.Strings[j] != want.Op.Strings[j] {
				t.Fatalf("fiddle %d string %d = %q, want %q", i, j, got.Op.Strings[j], want.Op.Strings[j])
			}
		}
		for j := range want.Op.Floats {
			if math.Float64bits(got.Op.Floats[j]) != math.Float64bits(want.Op.Floats[j]) {
				t.Fatalf("fiddle %d float %d = %v, want %v", i, j, got.Op.Floats[j], want.Op.Floats[j])
			}
		}
	}
	if len(log.TempRows) != len(wantRows) {
		t.Fatalf("temp rows = %d, want %d", len(log.TempRows), len(wantRows))
	}
	for i := range wantRows {
		got, want := log.TempRows[i], wantRows[i]
		if got.At != want.At || len(got.Temps) != len(want.Temps) {
			t.Fatalf("row %d: at=%v len=%d, want at=%v len=%d", i, got.At, len(got.Temps), want.At, len(want.Temps))
		}
		for j := range want.Temps {
			if math.Float64bits(got.Temps[j]) != math.Float64bits(want.Temps[j]) {
				t.Fatalf("row %d temp %d = %v, want %v", i, j, got.Temps[j], want.Temps[j])
			}
		}
	}
	// Boundary chunks are compared after reassembling per (tick, first
	// chunk order) — ReadLog keeps them as raw chunks.
	var merged []BoundaryRecord
	for _, b := range log.Boundary {
		if n := len(merged); n > 0 && merged[n-1].Tick == b.Tick && b.Region == merged[n-1].Region && len(merged[n-1].Index)%boundaryChunk == 0 && len(b.Index) > 0 {
			merged[n-1].Index = append(merged[n-1].Index, b.Index...)
			merged[n-1].Temps = append(merged[n-1].Temps, b.Temps...)
			continue
		}
		merged = append(merged, b)
	}
	if len(merged) != len(wantBounds) {
		t.Fatalf("boundary records = %d, want %d", len(merged), len(wantBounds))
	}
	for i := range wantBounds {
		got, want := merged[i], wantBounds[i]
		if got.Tick != want.Tick || got.Region != want.Region || len(got.Index) != len(want.Index) {
			t.Fatalf("boundary %d = %+v, want %+v", i, got, want)
		}
		for j := range want.Index {
			if got.Index[j] != want.Index[j] || math.Float64bits(got.Temps[j]) != math.Float64bits(want.Temps[j]) {
				t.Fatalf("boundary %d node %d = (%d, %v), want (%d, %v)", i, j, got.Index[j], got.Temps[j], want.Index[j], want.Temps[j])
			}
		}
	}
}

// writeSampleFile produces a small valid log and returns its bytes.
func writeSampleFile(t testing.TB, events int) []byte {
	t.Helper()
	path := tempPath(t)
	clk := clock.NewVirtual()
	w, err := Create(path, "sample", clk)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < events; i++ {
		w.RecordEvent(randEvent(rng))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestReaderTruncatedTail(t *testing.T) {
	data := writeSampleFile(t, 10)
	path := tempPath(t)
	// Cut the file mid-record (anywhere past the header that is not a
	// frame boundary); ReadLog must tolerate it and flag Truncated.
	for _, cut := range []int{len(data) - 1, len(data) - 5, len(data) - recEventSize} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		log, err := ReadLog(path)
		if err != nil {
			t.Fatalf("cut=%d: ReadLog must tolerate a truncated tail, got %v", cut, err)
		}
		if !log.Truncated {
			t.Errorf("cut=%d: Truncated flag not set", cut)
		}
		if len(log.Events) != 9 {
			t.Errorf("cut=%d: decoded %d events, want 9 intact ones", cut, len(log.Events))
		}
	}

	// The raw Reader reports the truncation as ErrTruncated.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := r.Next()
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("want ErrTruncated at tail, got %v", err)
		}
		var te *TruncatedError
		if !errors.As(err, &te) || te.Offset <= 0 {
			t.Fatalf("want *TruncatedError with offset, got %#v", err)
		}
		break
	}
}

func TestReaderCorruptCRC(t *testing.T) {
	data := writeSampleFile(t, 10)
	// Flip one payload byte of the 5th event record: the frames after
	// the header are the descriptor table, then events.
	off := headerSize + len(formats)*(frameOverhead+recFormatSize) +
		4*(frameOverhead+recEventSize) + frameOverhead + 10
	data[off] ^= 0xff
	path := tempPath(t)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadLog(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	wantOff := int64(headerSize + len(formats)*(frameOverhead+recFormatSize) + 4*(frameOverhead+recEventSize))
	if ce.Offset != wantOff {
		t.Errorf("corrupt offset = %d, want %d", ce.Offset, wantOff)
	}

	// Truncated tails must NOT mask corruption: a clean prefix still
	// decodes 4 events before the error.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		if _, ok := rec.(*EventRecord); ok {
			n++
		}
	}
	if n != 4 {
		t.Errorf("decoded %d events before the corruption, want 4", n)
	}
}

func TestReaderSkipsUnknownTypes(t *testing.T) {
	data := writeSampleFile(t, 2)
	// Append a valid frame of an unknown future type, then a known
	// event frame, by hand.
	unknown := frame(0x7f, []byte("future record payload"))
	rng := rand.New(rand.NewSource(3))
	e := randEvent(rng)
	var buf [recEventSize]byte
	encodeEvent(buf[:], &e)
	data = append(data, unknown...)
	data = append(data, frame(RecEvent, buf[:])...)
	path := tempPath(t)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", log.Skipped)
	}
	if len(log.Events) != 3 {
		t.Errorf("events = %d, want 3 (unknown frame must not desync framing)", len(log.Events))
	}
	if log.Events[2] != e {
		t.Errorf("event after unknown frame = %+v, want %+v", log.Events[2], e)
	}
}

func TestReaderBadMagicAndVersion(t *testing.T) {
	data := writeSampleFile(t, 1)
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := NewReader(bytesReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), data...)
	bad[8] = Version + 1
	if _, err := NewReader(bytesReader(bad)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := NewReader(bytesReader(data[:20])); err == nil {
		t.Error("short header accepted")
	}
}

// TestWriterDrops fills an unstarted writer's ring past capacity and
// checks the overflow is counted, not blocked on, and that the
// drained file carries exactly the accepted records.
func TestWriterDrops(t *testing.T) {
	path := tempPath(t)
	w, err := newWriter(path, "drops", clock.NewVirtual(), writerConfig{ringSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 21; i++ {
		w.RecordEvent(randEvent(rng))
	}
	if got := w.Drops(); got != 5 {
		t.Fatalf("drops = %d, want 5", got)
	}
	go w.drain()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != 16 {
		t.Errorf("events = %d, want the 16 accepted ones", len(log.Events))
	}
}

// TestWriterConcurrent hammers the ring from many goroutines and
// verifies the file stays frame-clean: every record decodes, nothing
// interleaves.
func TestWriterConcurrent(t *testing.T) {
	path := tempPath(t)
	w, err := Create(path, "conc", clock.NewVirtual(), WithRingSize(1024))
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				switch i % 3 {
				case 0:
					w.RecordEvent(randEvent(rng))
				case 1:
					w.RecordSpan(randSpan(rng))
				case 2:
					w.RecordFiddle(uint64(i), &wire.FiddleOp{Op: wire.OpPinInlet, Strings: []string{"m"}, Floats: []float64{40}})
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	got := uint64(len(log.Events) + len(log.Spans) + len(log.Inputs))
	want := uint64(workers*per) - w.Drops()
	if got != want {
		t.Errorf("decoded %d records, want %d (%d drops of %d)", got, want, w.Drops(), workers*per)
	}
	if log.Truncated {
		t.Error("concurrent writes produced a truncated file")
	}
}

// TestRecordHotPathAllocs pins the producer side at zero allocations:
// claim + encode + publish must not touch the heap. The drain
// goroutine is deliberately not running so only producer-side
// allocations are measured.
func TestRecordHotPathAllocs(t *testing.T) {
	path := tempPath(t)
	w, err := newWriter(path, "allocs", clock.NewVirtual(), writerConfig{ringSize: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	e := telemetry.Event{Seq: 1, At: time.Second, Type: telemetry.EvFiddle, Machine: "machine1", Node: "cpu", Value: 55, Detail: "pin-inlet(machine1)"}
	s := causal.Span{Seq: 1, Trace: 2, ID: 3, Kind: causal.KindStep, Begin: time.Second, End: 2 * time.Second, Machine: "machine1"}
	entries := []wire.UtilEntry{{Source: model.UtilCPU, Util: 0.5}, {Source: model.UtilDisk, Util: 0.25}}
	op := wire.FiddleOp{Op: wire.OpPinInlet, Strings: []string{"machine1"}, Floats: []float64{40}}
	temps := make([]float64, 123)
	cases := map[string]func(){
		"RecordEvent":   func() { w.RecordEvent(e) },
		"RecordSpan":    func() { w.RecordSpan(s) },
		"RecordUtil":    func() { w.RecordUtil(9, "machine1", 4, entries) },
		"RecordFiddle":  func() { w.RecordFiddle(9, &op) },
		"RecordTempRow": func() { w.RecordTempRow(time.Second, temps) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", name, allocs)
		}
	}
	go w.drain()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkRecordWrite is the CI tripwire for the recording hot path:
// bench_diff.sh fails the PR gate if its allocs/op leaves zero. It
// runs the full stack — ring claim, fixed-width encode, async drain
// to a real file.
func BenchmarkRecordWrite(b *testing.B) {
	path := tempPath(b)
	w, err := Create(path, "bench", clock.NewVirtual(), WithRingSize(1<<14))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	e := telemetry.Event{Seq: 1, At: time.Second, Type: telemetry.EvFiddle, Machine: "machine1", Node: "cpu", Value: 55, Detail: "pin-inlet(machine1)"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RecordEvent(e)
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(w.Drops())/float64(b.N), "drops/op")
}

// frame builds one wire frame by hand (test helper mirroring
// Writer.writeFrame).
func frame(typ byte, payload []byte) []byte {
	out := make([]byte, 0, frameOverhead+len(payload))
	out = append(out, typ, byte(len(payload)>>8), byte(len(payload)))
	out = append(out, payload...)
	crc := crc32.Checksum(out, crcTable)
	return append(out, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
