package recordlog

import (
	"math"
	"testing"
	"time"

	"github.com/darklab/mercury/internal/clock"
	"github.com/darklab/mercury/internal/fiddle"
	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/telemetry"
	"github.com/darklab/mercury/internal/units"
	"github.com/darklab/mercury/internal/wire"
)

// driveAndRecord steps a live solver for steps ticks, feeding it a
// deterministic utilization schedule plus one mid-run fiddle, and
// records everything the way solverd does: utils stamped with the
// tick they precede, temp rows every sampleEvery steps.
func driveAndRecord(t *testing.T, path string, steps int) {
	t.Helper()
	cm, err := model.DefaultCluster("room", 4)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver.New(cm, solver.Config{Step: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewVirtual()
	w, err := Create(path, "unit", clk, WithRingSize(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	machines := sol.Machines()
	pmM, pmN := sol.Probes()
	probes := make([]telemetry.TempProbe, len(pmM))
	for i := range probes {
		probes[i] = telemetry.TempProbe{Machine: pmM[i], Node: pmN[i]}
	}
	w.RecordMeta(sol.StepSize(), len(machines))
	w.SetProbes(probes)
	events := telemetry.NewEventLog(64, clk)
	events.SetSink(w.RecordEvent)

	scratch := make([]float64, len(probes))
	for n := 0; n < steps; n++ {
		// Second n: utils for the interval arrive before step n+1,
		// stamped with the current tick (n), as solverd records them.
		clk.AdvanceTo(time.Duration(n)*time.Second + 500*time.Millisecond)
		if n == steps/2 {
			op := wire.FiddleOp{Op: wire.OpPinInlet, Strings: []string{machines[1]}, Floats: []float64{38.6}}
			if err := fiddle.Apply(sol, &op); err != nil {
				t.Fatal(err)
			}
			w.RecordFiddle(uint64(n), &op)
			events.Emit(telemetry.EvFiddle, op.Strings[0], "", op.Floats[0], wire.FiddleEventDetail(&op))
		}
		clk.AdvanceTo(time.Duration(n+1) * time.Second)
		for i, m := range machines {
			u := 0.2 + 0.6*float64((n+i)%5)/4
			if err := sol.SetUtilization(m, model.UtilCPU, units.Fraction(u)); err != nil {
				t.Fatal(err)
			}
			w.RecordUtil(uint64(n), m, uint32(n+1), []wire.UtilEntry{{Source: model.UtilCPU, Util: units.Fraction(u)}})
		}
		sol.Step()
		if (n+1)%10 == 0 {
			sol.ReadAllTemps(scratch)
			w.RecordTempRow(time.Duration(n+1)*time.Second, scratch)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Drops() != 0 {
		t.Fatalf("recorder dropped %d records", w.Drops())
	}
}

func TestReplayBitIdentical(t *testing.T) {
	path := tempPath(t)
	const steps = 100
	driveAndRecord(t, path, steps)

	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := model.DefaultCluster("room", 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(log, cm, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical() {
		t.Fatalf("replay diverged: %d mismatches, first: %v", res.MismatchCount(), res.Mismatches)
	}
	if res.Steps != steps {
		t.Errorf("replayed %d steps, want %d", res.Steps, steps)
	}
	if res.RowsCompared != steps/10 || res.RowsMatched != res.RowsCompared {
		t.Errorf("rows compared/matched = %d/%d, want %d/%d", res.RowsCompared, res.RowsMatched, steps/10, steps/10)
	}
	if res.UtilsApplied != steps*4 {
		t.Errorf("utils applied = %d, want %d", res.UtilsApplied, steps*4)
	}
	if res.FiddlesApplied != 1 {
		t.Errorf("fiddles applied = %d, want 1", res.FiddlesApplied)
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	path := tempPath(t)
	driveAndRecord(t, path, 50)
	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb one recorded temperature by one ULP: the bitwise compare
	// must catch it.
	v := log.TempRows[2].Temps[3]
	log.TempRows[2].Temps[3] = math.Nextafter(v, v+1)
	cm, err := model.DefaultCluster("room", 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(log, cm, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Identical() {
		t.Fatal("one-ULP perturbation not detected")
	}
	if res.MismatchCount() != 1 || res.RowsMatched != res.RowsCompared-1 {
		t.Errorf("mismatches = %d, rows %d/%d; want exactly the perturbed row flagged",
			res.MismatchCount(), res.RowsMatched, res.RowsCompared)
	}
}

func TestReplayRejectsWrongModel(t *testing.T) {
	path := tempPath(t)
	driveAndRecord(t, path, 20)
	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := model.DefaultCluster("room", 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(log, cm, ReplayConfig{}); err == nil {
		t.Fatal("replay accepted a cluster with the wrong machine count")
	}
}
