// Package recordlog is Mercury's durable binary flight recorder: a
// compact, self-describing on-disk log of everything a run produces
// (causal spans, telemetry events, temperature rows) and everything
// that drove it (utilization updates, fiddle ops, boundary
// exchanges). A file captured from a live run can back-fill
// mercury-dash after a restart, and — because the solver is
// deterministic on the virtual clock — re-drive a fresh solver
// through cmd/mercury-replay to bit-identical temperatures at warp
// speed.
//
// The format borrows the proven binary-telemetry idiom (MAVLink-style
// dataflash logs): a fixed file header, then format-descriptor
// records declaring each record type's fixed-width payload layout,
// then the data records themselves, each length-prefixed and
// CRC-guarded. Readers skip unknown record types, so old readers can
// walk new files. See docs/recordlog.md for the byte-level layout
// table.
//
// All multi-byte integers are big-endian. Strings are fixed-width,
// NUL-padded, truncated if longer (truncations are counted by the
// Writer). Floats are IEEE-754 bits, big-endian.
package recordlog

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"time"

	"github.com/darklab/mercury/internal/causal"
	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/telemetry"
	"github.com/darklab/mercury/internal/units"
	"github.com/darklab/mercury/internal/wire"
)

// Magic opens every record log file: 8 bytes, human-greppable.
const Magic = "MRCYLOG1"

// Version is the current header version. Readers reject files with a
// higher major version; record-level evolution (new types, widened
// payloads) does not bump it.
const Version = 1

// Header flags.
const (
	// FlagVirtualClock marks a file recorded on the deterministic
	// virtual clock: the epoch is virtual t=0 and replay can
	// reproduce timestamps exactly.
	FlagVirtualClock = 0x01
)

// headerSize is the fixed file header:
//
//	magic[8] | version u8 | flags u8 | reserved u16 | epoch i64 (unix ns) | node[32]
const headerSize = 8 + 1 + 1 + 2 + 8 + nodeLen

const nodeLen = 32

// Record types. RecFormat descriptors for every type known to the
// writer are emitted synchronously right after the header, so a
// reader always learns the payload size of each type before meeting
// one — including types it does not understand.
const (
	RecFormat   byte = 0x00 // format descriptor (this table)
	RecSpan     byte = 0x01 // causal.Span
	RecEvent    byte = 0x02 // telemetry.Event
	RecProbe    byte = 0x03 // temp-probe identity (index -> machine/node)
	RecTempRow  byte = 0x04 // one sampled temperature column (chunked)
	RecUtil     byte = 0x05 // applied utilization update with solver tick
	RecFiddle   byte = 0x06 // applied fiddle op with solver tick
	RecBoundary byte = 0x07 // imported boundary temps (sharded runs)
	RecMeta     byte = 0x08 // run metadata (step size, machine count)
	RecAlert    byte = 0x09 // alert state transition (internal/alert)
)

// Fixed string field widths.
const (
	strKind    = 16 // span kind
	strType    = 24 // event type ("emergency-cleared" is 17 bytes)
	strMachine = 24
	strNode    = 24
	strDetail  = 64
	strSource  = 16 // util source / format name
)

// Repeated-group capacities. Larger inputs are chunked across
// multiple records (temp rows, boundaries) or truncated with a count
// (util entries beyond utilMaxEntries never occur: a machine has at
// most a handful of utilization sources).
const (
	tempChunk        = 56 // probes per RecTempRow
	boundaryChunk    = 40 // nodes per RecBoundary
	utilMaxEntries   = 8
	fiddleMaxStrings = 3 // wire.ValidateFiddle caps ops at 3 strings
	fiddleMaxFloats  = 4
)

// Fixed payload sizes per record type.
const (
	recFormatSize   = 4 + strSource + formatLayoutLen                                         // 132
	recSpanSize     = 8 + 8*3 + 8*2 + 8 + 8 + strKind + 2*strMachine                          // 128
	recEventSize    = 8 + 8 + 8 + strType + 2*strMachine + strDetail                          // 160
	recProbeSize    = 2 + 2 + 2*strMachine                                                    // 52
	recTempRowSize  = 8 + 2 + 2 + 4 + tempChunk*8                                             // 464
	recUtilSize     = 8 + 8 + 4 + 1 + 3 + strMachine + utilMaxEntries*(strSource+8)           // 240
	recFiddleSize   = 8 + 8 + 1 + 1 + 1 + 5 + fiddleMaxStrings*strMachine + fiddleMaxFloats*8 // 128
	recBoundarySize = 8 + 2 + 2 + 4 + boundaryChunk*(4+8)                                     // 496
	recMetaSize     = 8 + 4 + 4                                                               // 16
	recAlertSize    = recEventSize                                                            // 160
)

const formatLayoutLen = 112

// Frame overhead around each payload: type u8 | plen u16 | ... | crc32 u32.
const frameOverhead = 3 + 4

// maxPayload bounds what the Writer can frame (the ring cell buffer);
// the largest defined record (RecBoundary, 496 bytes) fits with room
// for future growth.
const maxPayload = 505

var crcTable = crc32.MakeTable(crc32.IEEE)

// FormatRecord describes one record type: its code, fixed payload
// size, short name, and a human-readable layout string (types:
// B=u8 H=u16 I=u32 Q=u64 q=i64ns d=f64 zN=string[N] xN=pad[N],
// n*(...)=repeated group).
type FormatRecord struct {
	Of     byte
	Size   uint16
	Name   string
	Layout string
}

// formats is the writer's descriptor table, emitted at file open.
var formats = []FormatRecord{
	{RecFormat, recFormatSize, "FMT", "BxH z16 z112 type,size,name,layout"},
	{RecSpan, recSpanSize, "SPAN", "Q QQQ qq d Q z16 z24 z24 seq,trace,id,parent,begin,end,value,step,kind,machine,node"},
	{RecEvent, recEventSize, "EVT", "Q q d z24 z24 z24 z64 seq,at,value,type,machine,node,detail"},
	{RecProbe, recProbeSize, "PRB", "H x2 z24 z24 index,machine,node"},
	{RecTempRow, recTempRowSize, "TMP", "q H H x4 56*d at,first,count,temps"},
	{RecUtil, recUtilSize, "UTL", "Q q I B x3 z24 8*(z16 d) tick,at,seq,count,machine,entries"},
	{RecFiddle, recFiddleSize, "FDL", "Q q B B B x5 3*z24 4*d tick,at,op,nstr,nfloat,strings,floats"},
	{RecBoundary, recBoundarySize, "BND", "Q H H x4 40*(I d) tick,region,count,index,exhaust"},
	{RecMeta, recMetaSize, "META", "q I x4 step,machines"},
	{RecAlert, recAlertSize, "ALT", "Q q d z24 z24 z24 z64 seq,at,value,state,machine,node,rule"},
}

// putStr copies s into the fixed-width field b, NUL-padding the
// remainder. Returns 1 if s was truncated, 0 otherwise.
func putStr(b []byte, s string) int {
	n := copy(b, s)
	for i := n; i < len(b); i++ {
		b[i] = 0
	}
	if n < len(s) {
		return 1
	}
	return 0
}

// getStr reads a NUL-padded fixed-width string field.
func getStr(b []byte) string {
	i := 0
	for i < len(b) && b[i] != 0 {
		i++
	}
	return string(b[:i])
}

func putF64(b []byte, v float64) {
	binary.BigEndian.PutUint64(b, math.Float64bits(v))
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// encodeHeader writes the 52-byte file header.
func encodeHeader(b []byte, flags byte, epoch time.Time, node string) int {
	copy(b[0:8], Magic)
	b[8] = Version
	b[9] = flags
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint64(b[12:], uint64(epoch.UnixNano()))
	trunc := putStr(b[20:20+nodeLen], node)
	_ = trunc
	return headerSize
}

func encodeFormat(b []byte, f *FormatRecord) int {
	b[0] = f.Of
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:], f.Size)
	putStr(b[4:4+strSource], f.Name)
	putStr(b[4+strSource:4+strSource+formatLayoutLen], f.Layout)
	return recFormatSize
}

func decodeFormat(b []byte) FormatRecord {
	return FormatRecord{
		Of:     b[0],
		Size:   binary.BigEndian.Uint16(b[2:]),
		Name:   getStr(b[4 : 4+strSource]),
		Layout: getStr(b[4+strSource : 4+strSource+formatLayoutLen]),
	}
}

func encodeSpan(b []byte, s *causal.Span) (n, trunc int) {
	binary.BigEndian.PutUint64(b[0:], s.Seq)
	binary.BigEndian.PutUint64(b[8:], s.Trace)
	binary.BigEndian.PutUint64(b[16:], s.ID)
	binary.BigEndian.PutUint64(b[24:], s.Parent)
	binary.BigEndian.PutUint64(b[32:], uint64(s.Begin))
	binary.BigEndian.PutUint64(b[40:], uint64(s.End))
	putF64(b[48:], s.Value)
	binary.BigEndian.PutUint64(b[56:], s.Step)
	trunc += putStr(b[64:64+strKind], string(s.Kind))
	trunc += putStr(b[80:80+strMachine], s.Machine)
	trunc += putStr(b[104:104+strNode], s.Node)
	return recSpanSize, trunc
}

func decodeSpan(b []byte) causal.Span {
	return causal.Span{
		Seq:     binary.BigEndian.Uint64(b[0:]),
		Trace:   binary.BigEndian.Uint64(b[8:]),
		ID:      binary.BigEndian.Uint64(b[16:]),
		Parent:  binary.BigEndian.Uint64(b[24:]),
		Begin:   time.Duration(binary.BigEndian.Uint64(b[32:])),
		End:     time.Duration(binary.BigEndian.Uint64(b[40:])),
		Value:   getF64(b[48:]),
		Step:    binary.BigEndian.Uint64(b[56:]),
		Kind:    causal.Kind(getStr(b[64 : 64+strKind])),
		Machine: getStr(b[80 : 80+strMachine]),
		Node:    getStr(b[104 : 104+strNode]),
	}
}

func encodeEvent(b []byte, e *telemetry.Event) (n, trunc int) {
	binary.BigEndian.PutUint64(b[0:], e.Seq)
	binary.BigEndian.PutUint64(b[8:], uint64(e.At))
	putF64(b[16:], e.Value)
	trunc += putStr(b[24:24+strType], string(e.Type))
	trunc += putStr(b[48:48+strMachine], e.Machine)
	trunc += putStr(b[72:72+strNode], e.Node)
	trunc += putStr(b[96:96+strDetail], e.Detail)
	return recEventSize, trunc
}

func decodeEvent(b []byte) telemetry.Event {
	return telemetry.Event{
		Seq:     binary.BigEndian.Uint64(b[0:]),
		At:      time.Duration(binary.BigEndian.Uint64(b[8:])),
		Value:   getF64(b[16:]),
		Type:    telemetry.EventType(getStr(b[24 : 24+strType])),
		Machine: getStr(b[48 : 48+strMachine]),
		Node:    getStr(b[72 : 72+strNode]),
		Detail:  getStr(b[96 : 96+strDetail]),
	}
}

func encodeProbe(b []byte, index int, p *telemetry.TempProbe) (n, trunc int) {
	binary.BigEndian.PutUint16(b[0:], uint16(index))
	b[2], b[3] = 0, 0
	trunc += putStr(b[4:4+strMachine], p.Machine)
	trunc += putStr(b[28:28+strNode], p.Node)
	return recProbeSize, trunc
}

// ProbeRecord identifies one temperature probe column.
type ProbeRecord struct {
	Index   int
	Machine string
	Node    string
}

func decodeProbe(b []byte) ProbeRecord {
	return ProbeRecord{
		Index:   int(binary.BigEndian.Uint16(b[0:])),
		Machine: getStr(b[4 : 4+strMachine]),
		Node:    getStr(b[28 : 28+strNode]),
	}
}

// encodeTempChunk writes one chunk of a sampled temperature column:
// probes [first, first+len(vals)) at virtual time at.
func encodeTempChunk(b []byte, at time.Duration, first int, vals []float64) int {
	binary.BigEndian.PutUint64(b[0:], uint64(at))
	binary.BigEndian.PutUint16(b[8:], uint16(first))
	binary.BigEndian.PutUint16(b[10:], uint16(len(vals)))
	binary.BigEndian.PutUint32(b[12:], 0)
	for i, v := range vals {
		putF64(b[16+8*i:], v)
	}
	for i := len(vals); i < tempChunk; i++ {
		putF64(b[16+8*i:], 0)
	}
	return recTempRowSize
}

// TempChunk is one decoded RecTempRow: a contiguous slice of the
// probe column sampled at At. Full rows are reassembled by ReadLog.
type TempChunk struct {
	At    time.Duration
	First int
	Temps []float64
}

func decodeTempChunk(b []byte) (TempChunk, bool) {
	count := int(binary.BigEndian.Uint16(b[10:]))
	if count > tempChunk {
		return TempChunk{}, false
	}
	c := TempChunk{
		At:    time.Duration(binary.BigEndian.Uint64(b[0:])),
		First: int(binary.BigEndian.Uint16(b[8:])),
		Temps: make([]float64, count),
	}
	for i := range c.Temps {
		c.Temps[i] = getF64(b[16+8*i:])
	}
	return c, true
}

func encodeUtil(b []byte, tick uint64, at time.Duration, seq uint32, machine string, entries []wire.UtilEntry) (n, trunc int) {
	binary.BigEndian.PutUint64(b[0:], tick)
	binary.BigEndian.PutUint64(b[8:], uint64(at))
	binary.BigEndian.PutUint32(b[16:], seq)
	count := len(entries)
	if count > utilMaxEntries {
		count = utilMaxEntries
		trunc++
	}
	b[20] = byte(count)
	b[21], b[22], b[23] = 0, 0, 0
	trunc += putStr(b[24:24+strMachine], machine)
	off := 24 + strMachine
	for i := 0; i < count; i++ {
		trunc += putStr(b[off:off+strSource], string(entries[i].Source))
		putF64(b[off+strSource:], float64(entries[i].Util))
		off += strSource + 8
	}
	for i := count; i < utilMaxEntries; i++ {
		putStr(b[off:off+strSource], "")
		putF64(b[off+strSource:], 0)
		off += strSource + 8
	}
	return recUtilSize, trunc
}

// UtilRecord is one applied utilization update: which solver tick it
// was applied before (the update influences step Tick+1), the wire
// sequence number, and the per-source fractions.
type UtilRecord struct {
	Tick    uint64
	At      time.Duration
	Seq     uint32
	Machine string
	Entries []wire.UtilEntry
}

func decodeUtil(b []byte) (UtilRecord, bool) {
	count := int(b[20])
	if count > utilMaxEntries {
		return UtilRecord{}, false
	}
	u := UtilRecord{
		Tick:    binary.BigEndian.Uint64(b[0:]),
		At:      time.Duration(binary.BigEndian.Uint64(b[8:])),
		Seq:     binary.BigEndian.Uint32(b[16:]),
		Machine: getStr(b[24 : 24+strMachine]),
		Entries: make([]wire.UtilEntry, count),
	}
	off := 24 + strMachine
	for i := range u.Entries {
		u.Entries[i] = wire.UtilEntry{
			Source: model.UtilSource(getStr(b[off : off+strSource])),
			Util:   units.Fraction(getF64(b[off+strSource:])),
		}
		off += strSource + 8
	}
	return u, true
}

func encodeFiddle(b []byte, tick uint64, at time.Duration, op *wire.FiddleOp) (n, trunc int) {
	binary.BigEndian.PutUint64(b[0:], tick)
	binary.BigEndian.PutUint64(b[8:], uint64(at))
	b[16] = op.Op
	nstr := len(op.Strings)
	if nstr > fiddleMaxStrings {
		nstr = fiddleMaxStrings
		trunc++
	}
	nfloat := len(op.Floats)
	if nfloat > fiddleMaxFloats {
		nfloat = fiddleMaxFloats
		trunc++
	}
	b[17] = byte(nstr)
	b[18] = byte(nfloat)
	for i := 19; i < 24; i++ {
		b[i] = 0
	}
	off := 24
	for i := 0; i < fiddleMaxStrings; i++ {
		s := ""
		if i < nstr {
			s = op.Strings[i]
		}
		trunc += putStr(b[off:off+strMachine], s)
		off += strMachine
	}
	for i := 0; i < fiddleMaxFloats; i++ {
		v := 0.0
		if i < nfloat {
			v = op.Floats[i]
		}
		putF64(b[off:], v)
		off += 8
	}
	return recFiddleSize, trunc
}

// FiddleRecord is one applied fiddle op, stamped with the solver tick
// it was applied after (it influences step Tick+1).
type FiddleRecord struct {
	Tick uint64
	At   time.Duration
	Op   wire.FiddleOp
}

func decodeFiddle(b []byte) (FiddleRecord, bool) {
	nstr := int(b[17])
	nfloat := int(b[18])
	if nstr > fiddleMaxStrings || nfloat > fiddleMaxFloats {
		return FiddleRecord{}, false
	}
	f := FiddleRecord{
		Tick: binary.BigEndian.Uint64(b[0:]),
		At:   time.Duration(binary.BigEndian.Uint64(b[8:])),
		Op:   wire.FiddleOp{Op: b[16]},
	}
	off := 24
	if nstr > 0 {
		f.Op.Strings = make([]string, nstr)
		for i := range f.Op.Strings {
			f.Op.Strings[i] = getStr(b[off+i*strMachine : off+(i+1)*strMachine])
		}
	}
	off += fiddleMaxStrings * strMachine
	if nfloat > 0 {
		f.Op.Floats = make([]float64, nfloat)
		for i := range f.Op.Floats {
			f.Op.Floats[i] = getF64(b[off+8*i:])
		}
	}
	return f, true
}

// encodeBoundaryChunk writes one chunk of an imported boundary
// exchange: node indices and exhaust temps from a neighbouring shard.
func encodeBoundaryChunk(b []byte, tick uint64, region int, idx []int32, temps []float64) int {
	binary.BigEndian.PutUint64(b[0:], tick)
	binary.BigEndian.PutUint16(b[8:], uint16(region))
	binary.BigEndian.PutUint16(b[10:], uint16(len(idx)))
	binary.BigEndian.PutUint32(b[12:], 0)
	off := 16
	for i := 0; i < boundaryChunk; i++ {
		var ix int32
		var v float64
		if i < len(idx) {
			ix, v = idx[i], temps[i]
		}
		binary.BigEndian.PutUint32(b[off:], uint32(ix))
		putF64(b[off+4:], v)
		off += 12
	}
	return recBoundarySize
}

// BoundaryRecord is one decoded chunk of a boundary-temperature
// import on a sharded run.
type BoundaryRecord struct {
	Tick   uint64
	Region int
	Index  []int32
	Temps  []float64
}

func decodeBoundary(b []byte) (BoundaryRecord, bool) {
	count := int(binary.BigEndian.Uint16(b[10:]))
	if count > boundaryChunk {
		return BoundaryRecord{}, false
	}
	r := BoundaryRecord{
		Tick:   binary.BigEndian.Uint64(b[0:]),
		Region: int(binary.BigEndian.Uint16(b[8:])),
		Index:  make([]int32, count),
		Temps:  make([]float64, count),
	}
	off := 16
	for i := 0; i < count; i++ {
		r.Index[i] = int32(binary.BigEndian.Uint32(b[off:]))
		r.Temps[i] = getF64(b[off+4:])
		off += 12
	}
	return r, true
}

func encodeMeta(b []byte, step time.Duration, machines int) int {
	binary.BigEndian.PutUint64(b[0:], uint64(step))
	binary.BigEndian.PutUint32(b[8:], uint32(machines))
	binary.BigEndian.PutUint32(b[12:], 0)
	return recMetaSize
}

// MetaRecord carries run metadata needed to rebuild a compatible
// solver: the step size and machine count.
type MetaRecord struct {
	Step     time.Duration
	Machines int
}

func decodeMeta(b []byte) MetaRecord {
	return MetaRecord{
		Step:     time.Duration(binary.BigEndian.Uint64(b[0:])),
		Machines: int(binary.BigEndian.Uint32(b[8:])),
	}
}
