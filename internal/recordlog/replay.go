package recordlog

import (
	"fmt"
	"math"
	"time"

	"github.com/darklab/mercury/internal/clock"
	"github.com/darklab/mercury/internal/fiddle"
	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/solver"
	"github.com/darklab/mercury/internal/telemetry"
	"github.com/darklab/mercury/internal/wire"
)

// ReplayConfig tunes Replay.
type ReplayConfig struct {
	// Workers is passed to solver.Config; temperatures are
	// bit-identical at every worker count.
	Workers int
	// MaxMismatches caps the diagnostics collected before replay
	// keeps counting silently. Default 20.
	MaxMismatches int
}

// ReplayResult summarizes one replay against its recording.
type ReplayResult struct {
	Steps          uint64
	UtilsApplied   int
	FiddlesApplied int
	RowsCompared   int
	RowsMatched    int
	EventsCompared int
	EventsMatched  int
	Mismatches     []string // first MaxMismatches diagnostics
	mismatchTotal  int
	// Events is the replayed event stream (fiddle applications).
	Events []telemetry.Event
}

// Identical reports a bit-perfect replay: every recorded temperature
// row and every replayed event matched.
func (r *ReplayResult) Identical() bool { return r.mismatchTotal == 0 }

// MismatchCount returns the total number of mismatches (including
// those beyond the Mismatches cap).
func (r *ReplayResult) MismatchCount() int { return r.mismatchTotal }

func (r *ReplayResult) mismatch(format string, args ...any) {
	r.mismatchTotal++
	if len(r.Mismatches) < cap(r.Mismatches) {
		r.Mismatches = append(r.Mismatches, fmt.Sprintf(format, args...))
	}
}

// Replay re-drives a fresh solver through a recorded run on the
// virtual clock: every recorded utilization update and fiddle op is
// applied before the solver steps the tick it influenced, and every
// recorded temperature row is compared bitwise against the replayed
// solver's probe column. cm must be the same cluster model the
// recording ran against (the caller rebuilds it from the same config
// and seed; Replay cross-checks machine count and probe identity).
//
// The recording is solver-side: replay reproduces solver state and
// re-emits the fiddle-application events, without monitord, Freon, or
// the network — a 2000-second run replays in milliseconds.
func Replay(log *Log, cm *model.Cluster, cfg ReplayConfig) (*ReplayResult, error) {
	if log.Step <= 0 {
		return nil, fmt.Errorf("recordlog: log carries no meta record (step size unknown); was it recorded by a solver daemon?")
	}
	if !log.Header.Virtual() {
		return nil, fmt.Errorf("recordlog: log %q was recorded on the real clock; only virtual-clock runs replay deterministically", log.Header.Node)
	}
	if cfg.MaxMismatches <= 0 {
		cfg.MaxMismatches = 20
	}
	sol, err := solver.New(cm, solver.Config{Step: log.Step, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("recordlog: rebuild solver: %w", err)
	}
	machines := sol.Machines()
	if log.Machines != 0 && log.Machines != len(machines) {
		return nil, fmt.Errorf("recordlog: log recorded %d machines, model has %d — wrong cluster config?", log.Machines, len(machines))
	}
	res := &ReplayResult{Mismatches: make([]string, 0, cfg.MaxMismatches)}

	// Cross-check probe identity so row comparisons compare like with
	// like. A log without probe records (no -ctl on the recording
	// daemon) simply has no rows to compare.
	pm, pn := sol.Probes()
	if len(log.Probes) > 0 {
		if len(log.Probes) != len(pm) {
			return nil, fmt.Errorf("recordlog: log has %d probes, model has %d", len(log.Probes), len(pm))
		}
		for i, p := range log.Probes {
			if p.Machine != pm[i] || p.Node != pn[i] {
				return nil, fmt.Errorf("recordlog: probe %d is %s/%s in log but %s/%s in model", i, p.Machine, p.Node, pm[i], pn[i])
			}
		}
	}

	// Rows keyed by sample time; sampling happens on step boundaries.
	rows := make(map[time.Duration]*TempRow, len(log.TempRows))
	var lastAt time.Duration
	for i := range log.TempRows {
		rows[log.TempRows[i].At] = &log.TempRows[i]
		if log.TempRows[i].At > lastAt {
			lastAt = log.TempRows[i].At
		}
	}
	steps := uint64(lastAt / log.Step)
	for _, in := range log.Inputs {
		if in.Tick+1 > steps {
			steps = in.Tick + 1
		}
	}

	clk := clock.NewVirtual()
	events := telemetry.NewEventLog(len(log.Inputs)+16, clk)
	scratch := make([]float64, len(pm))
	ii := 0
	for n := uint64(1); n <= steps; n++ {
		// Apply every input recorded before step n fired, in recorded
		// order, advancing the clock to each input's timestamp so
		// re-emitted events reproduce the recorded stamps.
		for ii < len(log.Inputs) && log.Inputs[ii].Tick < n {
			in := log.Inputs[ii]
			ii++
			clk.AdvanceTo(in.At)
			switch {
			case in.Util != nil:
				for _, e := range in.Util.Entries {
					if err := sol.SetUtilization(in.Util.Machine, e.Source, e.Util); err != nil {
						res.mismatch("tick %d: util %s/%s: %v", in.Tick, in.Util.Machine, e.Source, err)
					}
				}
				res.UtilsApplied++
			case in.Fiddle != nil:
				op := in.Fiddle.Op
				if err := fiddle.Apply(sol, &op); err != nil {
					res.mismatch("tick %d: fiddle %s: %v", in.Tick, wire.FiddleEventDetail(&op), err)
					continue
				}
				machine := ""
				if len(op.Strings) > 0 {
					machine = op.Strings[0]
				}
				value := 0.0
				if len(op.Floats) > 0 {
					value = op.Floats[0]
				}
				events.Emit(telemetry.EvFiddle, machine, "", value, wire.FiddleEventDetail(&op))
				res.FiddlesApplied++
			}
		}
		clk.AdvanceTo(time.Duration(n) * log.Step)
		sol.Step()
		res.Steps = n
		if row, ok := rows[time.Duration(n)*log.Step]; ok {
			sol.ReadAllTemps(scratch)
			res.RowsCompared++
			if len(row.Temps) != len(scratch) {
				res.mismatch("step %d: row has %d temps, model has %d probes", n, len(row.Temps), len(scratch))
				continue
			}
			match := true
			for i := range scratch {
				if math.Float64bits(scratch[i]) != math.Float64bits(row.Temps[i]) {
					res.mismatch("step %d probe %d (%s/%s): replay %.9g != recorded %.9g", n, i, pm[i], pn[i], scratch[i], row.Temps[i])
					match = false
					break
				}
			}
			if match {
				res.RowsMatched++
			}
		}
	}

	// Compare the replayed event stream against the recorded fiddle
	// events, everything but the log-assigned Seq.
	res.Events = events.Since(0)
	var recFiddles []telemetry.Event
	for _, e := range log.Events {
		if e.Type == telemetry.EvFiddle {
			recFiddles = append(recFiddles, e)
		}
	}
	res.EventsCompared = len(recFiddles)
	if len(res.Events) != len(recFiddles) {
		res.mismatch("replay emitted %d fiddle events, recording has %d", len(res.Events), len(recFiddles))
	} else {
		for i := range recFiddles {
			if sameEvent(res.Events[i], recFiddles[i]) {
				res.EventsMatched++
			} else {
				res.mismatch("fiddle event %d: replay %q != recorded %q", i, res.Events[i].String(), recFiddles[i].String())
			}
		}
	}
	return res, nil
}

// sameEvent compares everything but Seq, floats bitwise.
func sameEvent(a, b telemetry.Event) bool {
	return a.At == b.At && a.Type == b.Type && a.Machine == b.Machine &&
		a.Node == b.Node && a.Detail == b.Detail &&
		math.Float64bits(a.Value) == math.Float64bits(b.Value)
}
