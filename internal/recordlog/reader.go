package recordlog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"github.com/darklab/mercury/internal/causal"
	"github.com/darklab/mercury/internal/telemetry"
)

// ErrTruncated marks a file that ends mid-frame — the normal tail
// state of a log whose writer was killed (or is still running).
// Matched by errors.Is on the *TruncatedError returned from Next.
var ErrTruncated = errors.New("recordlog: truncated record at end of file")

// TruncatedError reports a frame cut off by end-of-file.
type TruncatedError struct {
	Offset int64 // file offset of the truncated frame
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("recordlog: truncated record at offset %d", e.Offset)
}

func (e *TruncatedError) Is(target error) bool { return target == ErrTruncated }

// CorruptError reports mid-file corruption: a CRC mismatch or a
// payload that fails bounds checks. Unlike a truncated tail this is
// fatal — framing can no longer be trusted.
type CorruptError struct {
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("recordlog: corrupt record at offset %d: %s", e.Offset, e.Reason)
}

// Header is the decoded file header.
type Header struct {
	Version byte
	Flags   byte
	Epoch   time.Time
	Node    string
}

// Virtual reports whether the file was recorded on the deterministic
// virtual clock.
func (h Header) Virtual() bool { return h.Flags&FlagVirtualClock != 0 }

// Record is any decoded record. The concrete types are
// *FormatRecord, *causal.Span (via SpanRecord), etc. — switch on the
// wrapper types below.
type Record interface{ rec() }

// SpanRecord wraps a decoded causal span.
type SpanRecord struct{ Span causal.Span }

// EventRecord wraps a decoded telemetry event.
type EventRecord struct{ Event telemetry.Event }

// AltRecord wraps a decoded alert state transition. The payload
// mirrors RecEvent: Type is the transition
// (alert-pending/firing/resolved), Detail the rule name.
type AltRecord struct{ Event telemetry.Event }

func (*FormatRecord) rec()   {}
func (*SpanRecord) rec()     {}
func (*EventRecord) rec()    {}
func (*ProbeRecord) rec()    {}
func (*TempChunk) rec()      {}
func (*UtilRecord) rec()     {}
func (*FiddleRecord) rec()   {}
func (*BoundaryRecord) rec() {}
func (*MetaRecord) rec()     {}
func (*AltRecord) rec()      {}

// Reader streams records from one flight-recorder file. Decode
// errors are strict: a truncated tail returns *TruncatedError
// (tolerated by ReadLog), anything else mid-file returns
// *CorruptError with the offending offset. Records of unknown type
// with a valid CRC are skipped and counted.
type Reader struct {
	br      *bufio.Reader
	off     int64
	hdr     Header
	skipped uint64
	scratch []byte
}

// NewReader reads the header from r and returns a Reader positioned
// at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{br: bufio.NewReaderSize(r, 1<<16)}
	var hdr [headerSize]byte
	n, err := io.ReadFull(rd.br, hdr[:])
	rd.off = int64(n)
	if err != nil {
		return nil, fmt.Errorf("recordlog: short header: %w", err)
	}
	if string(hdr[0:8]) != Magic {
		return nil, fmt.Errorf("recordlog: bad magic %q", hdr[0:8])
	}
	if hdr[8] > Version {
		return nil, fmt.Errorf("recordlog: unsupported version %d (reader speaks %d)", hdr[8], Version)
	}
	rd.hdr = Header{
		Version: hdr[8],
		Flags:   hdr[9],
		Epoch:   time.Unix(0, int64(binary.BigEndian.Uint64(hdr[12:]))),
		Node:    getStr(hdr[20 : 20+nodeLen]),
	}
	return rd, nil
}

// Header returns the decoded file header.
func (r *Reader) Header() Header { return r.hdr }

// Skipped returns the number of valid records of unknown type
// skipped so far.
func (r *Reader) Skipped() uint64 { return r.skipped }

// Offset returns the file offset of the next unread byte.
func (r *Reader) Offset() int64 { return r.off }

// Next returns the next decoded record. io.EOF marks a clean end of
// file; *TruncatedError a frame cut off by EOF; *CorruptError
// unrecoverable mid-file damage. Unknown record types with valid
// CRCs are skipped transparently.
func (r *Reader) Next() (Record, error) {
	for {
		start := r.off
		var hdr [3]byte
		if _, err := io.ReadFull(r.br, hdr[:1]); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, &TruncatedError{Offset: start}
		}
		if _, err := io.ReadFull(r.br, hdr[1:]); err != nil {
			return nil, &TruncatedError{Offset: start}
		}
		typ := hdr[0]
		plen := int(binary.BigEndian.Uint16(hdr[1:]))
		if cap(r.scratch) < plen+4 {
			r.scratch = make([]byte, plen+4)
		}
		body := r.scratch[:plen+4]
		if _, err := io.ReadFull(r.br, body); err != nil {
			return nil, &TruncatedError{Offset: start}
		}
		r.off = start + int64(frameOverhead+plen)
		payload := body[:plen]
		want := binary.BigEndian.Uint32(body[plen:])
		crc := crc32.Update(0, crcTable, hdr[:])
		crc = crc32.Update(crc, crcTable, payload)
		if crc != want {
			return nil, &CorruptError{Offset: start, Reason: fmt.Sprintf("crc mismatch (got %08x want %08x)", crc, want)}
		}
		rec, known, ok := decodeRecord(typ, payload)
		if !known {
			r.skipped++
			continue
		}
		if !ok {
			return nil, &CorruptError{Offset: start, Reason: fmt.Sprintf("record type 0x%02x payload %d bytes fails bounds check", typ, plen)}
		}
		return rec, nil
	}
}

// decodeRecord decodes one CRC-valid payload. known is false for
// record types this reader does not understand (forward compat); ok
// is false when a known type's payload is too short or fails bounds
// checks. Payloads longer than the known fixed size are accepted and
// decoded by prefix, so record types can grow fields.
func decodeRecord(typ byte, payload []byte) (rec Record, known, ok bool) {
	size := 0
	switch typ {
	case RecFormat:
		size = recFormatSize
	case RecSpan:
		size = recSpanSize
	case RecEvent:
		size = recEventSize
	case RecProbe:
		size = recProbeSize
	case RecTempRow:
		size = recTempRowSize
	case RecUtil:
		size = recUtilSize
	case RecFiddle:
		size = recFiddleSize
	case RecBoundary:
		size = recBoundarySize
	case RecMeta:
		size = recMetaSize
	case RecAlert:
		size = recAlertSize
	default:
		return nil, false, false
	}
	if len(payload) < size {
		return nil, true, false
	}
	switch typ {
	case RecFormat:
		f := decodeFormat(payload)
		return &f, true, true
	case RecSpan:
		return &SpanRecord{Span: decodeSpan(payload)}, true, true
	case RecEvent:
		return &EventRecord{Event: decodeEvent(payload)}, true, true
	case RecProbe:
		p := decodeProbe(payload)
		return &p, true, true
	case RecTempRow:
		c, ok := decodeTempChunk(payload)
		return &c, true, ok
	case RecUtil:
		u, ok := decodeUtil(payload)
		return &u, true, ok
	case RecFiddle:
		f, ok := decodeFiddle(payload)
		return &f, true, ok
	case RecBoundary:
		b, ok := decodeBoundary(payload)
		return &b, true, ok
	case RecAlert:
		return &AltRecord{Event: decodeEvent(payload)}, true, true
	default: // RecMeta
		m := decodeMeta(payload)
		return &m, true, true
	}
}

// Input is one recorded solver input in file order: exactly one of
// Util or Fiddle is set. Tick is the solver step count at apply time;
// replay applies the input before stepping tick Tick+1.
type Input struct {
	Tick   uint64
	At     time.Duration
	Util   *UtilRecord
	Fiddle *FiddleRecord
}

// TempRow is one reassembled temperature column: every probe at At.
type TempRow struct {
	At    time.Duration
	Temps []float64
}

// Log is a fully-decoded flight-recorder file.
type Log struct {
	Header    Header
	Formats   []FormatRecord
	Step      time.Duration // from RecMeta; 0 if absent
	Machines  int
	Probes    []telemetry.TempProbe
	Events    []telemetry.Event
	Alerts    []telemetry.Event // ALT records: alert transitions, file order
	Spans     []causal.Span
	TempRows  []TempRow
	Inputs    []Input // utils + fiddles, file order preserved
	Boundary  []BoundaryRecord
	Truncated bool // file ended mid-frame (writer killed or live)
	Skipped   uint64
}

// ReadLog decodes an entire capture, stitching rotation segments
// (base.mrl, base.1.mrl, base.2.mrl, …) in sequence into one Log. A
// truncated tail on the last segment is tolerated (Log.Truncated is
// set); corruption is returned as *CorruptError.
func ReadLog(path string) (*Log, error) {
	log := &Log{}
	rowIdx := -1
	if err := readSegment(log, path, true, &rowIdx); err != nil {
		return nil, err
	}
	for seg := 1; !log.Truncated; seg++ {
		p := SegmentPath(path, seg)
		if _, err := os.Stat(p); err != nil {
			break
		}
		if err := readSegment(log, p, false, &rowIdx); err != nil {
			return nil, err
		}
	}
	return log, nil
}

// readSegment decodes one segment file into log. Non-first segments
// skip their (identical) descriptor table; their re-emitted META and
// probe records overwrite idempotently. rowIdx carries the temp-row
// reassembly cursor across segments — a chunked row can straddle a
// rotation boundary.
func readSegment(log *Log, path string, first bool, rowIdx *int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return err
	}
	if first {
		log.Header = r.Header()
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if errors.Is(err, ErrTruncated) {
				log.Truncated = true
				break
			}
			return err
		}
		switch v := rec.(type) {
		case *FormatRecord:
			if first {
				log.Formats = append(log.Formats, *v)
			}
		case *MetaRecord:
			log.Step = v.Step
			log.Machines = v.Machines
		case *ProbeRecord:
			for len(log.Probes) <= v.Index {
				log.Probes = append(log.Probes, telemetry.TempProbe{})
			}
			log.Probes[v.Index] = telemetry.TempProbe{Machine: v.Machine, Node: v.Node}
		case *EventRecord:
			log.Events = append(log.Events, v.Event)
		case *AltRecord:
			log.Alerts = append(log.Alerts, v.Event)
		case *SpanRecord:
			log.Spans = append(log.Spans, v.Span)
		case *TempChunk:
			// Chunks of one column share a timestamp and arrive in
			// order; reassemble them into a full row.
			var row *TempRow
			if *rowIdx >= 0 {
				row = &log.TempRows[*rowIdx]
			}
			if v.First == 0 || row == nil || row.At != v.At || len(row.Temps) != v.First {
				log.TempRows = append(log.TempRows, TempRow{At: v.At})
				*rowIdx = len(log.TempRows) - 1
				row = &log.TempRows[*rowIdx]
			}
			row.Temps = append(row.Temps, v.Temps...)
		case *UtilRecord:
			log.Inputs = append(log.Inputs, Input{Tick: v.Tick, At: v.At, Util: v})
		case *FiddleRecord:
			log.Inputs = append(log.Inputs, Input{Tick: v.Tick, At: v.At, Fiddle: v})
		case *BoundaryRecord:
			log.Boundary = append(log.Boundary, *v)
		}
	}
	log.Skipped += r.Skipped()
	return nil
}
