package recordlog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/darklab/mercury/internal/causal"
	"github.com/darklab/mercury/internal/clock"
	"github.com/darklab/mercury/internal/telemetry"
	"github.com/darklab/mercury/internal/wire"
)

// defaultRingSize is the default record ring capacity (must be a
// power of two). At ~500 bytes max per record that is ~1 MiB of
// buffer between the hot paths and the disk.
const defaultRingSize = 2048

// cellBuf is each ring cell's payload buffer; every defined record
// fits (maxPayload ≤ cellBuf).
const cellBuf = 512

// cell is one slot of the bounded MPSC ring. seq carries the Vyukov
// protocol state: pos means "free for the producer claiming pos",
// pos+1 means "published, awaiting the consumer", pos+ringSize means
// "consumed, free for the producer claiming pos+ringSize".
type cell struct {
	seq atomic.Uint64
	typ byte
	n   uint16
	buf [cellBuf]byte
}

// WriterOption configures Create.
type WriterOption func(*writerConfig)

type writerConfig struct {
	ringSize  int
	autostart bool
	maxBytes  int64
}

// WithRingSize sets the record ring capacity (rounded up to a power
// of two, minimum 8). A larger ring tolerates longer disk stalls
// before records are dropped.
func WithRingSize(n int) WriterOption {
	return func(c *writerConfig) { c.ringSize = n }
}

// WithMaxBytes enables size-based rotation: once a segment file
// exceeds n bytes the writer closes it and continues in the next
// segment (base.mrl → base.1.mrl → base.2.mrl …). Each segment
// re-emits the file header (same epoch), the format-descriptor table,
// and the cached META and probe-identity records, so every segment is
// self-describing. 0 (the default) disables rotation.
func WithMaxBytes(n int64) WriterOption {
	return func(c *writerConfig) { c.maxBytes = n }
}

// Writer appends records to one flight-recorder file. The Record*
// methods are safe for concurrent use, never block, and perform no
// allocations: each encodes into a preallocated ring cell claimed
// with a single CAS; a background goroutine drains cells to a
// buffered file. When the ring is full (disk too slow) the record is
// dropped and counted — the hot path is never back-pressured.
type Writer struct {
	f     *os.File
	bw    *bufio.Writer
	clk   clock.Clock
	epoch time.Time
	path  string
	node  string
	flags byte

	// Rotation state. segBytes/seg are touched only by the consumer
	// goroutine (and by newWriter before it starts); the cached
	// META/probe payloads are shared with producers under metaMu.
	maxBytes int64
	segBytes int64
	seg      int
	segments atomic.Uint64

	metaMu       sync.Mutex
	metaStep     time.Duration
	metaMachines int
	metaProbes   []telemetry.TempProbe

	cells []cell
	mask  uint64
	enq   atomic.Uint64 // next producer position
	deq   uint64        // next consumer position (consumer goroutine only)

	drops     atomic.Uint64
	written   atomic.Uint64
	truncated atomic.Uint64

	notify chan struct{}
	quit   chan struct{}
	done   chan struct{}
	once   sync.Once

	mu   sync.Mutex
	werr error // first write error, reported by Close
}

// Create opens path for writing, emits the file header and the
// format-descriptor table synchronously, and starts the drain
// goroutine. node names the recording daemon (stored in the header,
// used by dash backfill as the target name). clk stamps util/fiddle
// records; pass the daemon's clock (nil falls back to the real
// clock). The epoch recorded in the header is clk.Now() at Create
// time — create the writer before advancing a virtual clock so the
// epoch is virtual t=0.
func Create(path, node string, clk clock.Clock, opts ...WriterOption) (*Writer, error) {
	w, err := newWriter(path, node, clk, writerConfig{ringSize: defaultRingSize, autostart: true}, opts...)
	return w, err
}

func newWriter(path, node string, clk clock.Clock, cfg writerConfig, opts ...WriterOption) (*Writer, error) {
	for _, o := range opts {
		o(&cfg)
	}
	size := 8
	for size < cfg.ringSize {
		size <<= 1
	}
	if clk == nil {
		clk = clock.Real{}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		f:        f,
		bw:       bufio.NewWriterSize(f, 1<<16),
		clk:      clk,
		epoch:    clk.Now(),
		path:     path,
		node:     node,
		maxBytes: cfg.maxBytes,
		cells:    make([]cell, size),
		mask:     uint64(size - 1),
		notify:   make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := range w.cells {
		w.cells[i].seq.Store(uint64(i))
	}
	if _, ok := clk.(*clock.Virtual); ok {
		w.flags |= FlagVirtualClock
	}
	var hdr [headerSize]byte
	encodeHeader(hdr[:], w.flags, w.epoch, node)
	w.segBytes = headerSize
	if _, err := w.bw.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	// The descriptor table is written synchronously so every reader —
	// including one racing a live writer — sees the full format table
	// before any data record.
	var payload [recFormatSize]byte
	for i := range formats {
		encodeFormat(payload[:], &formats[i])
		w.writeFrame(RecFormat, payload[:])
	}
	if err := w.bw.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if cfg.autostart {
		go w.drain()
	}
	return w, nil
}

// Path returns the file path the writer was created with.
func (w *Writer) Path() string { return w.path }

// Drops returns the number of records dropped because the ring was
// full.
func (w *Writer) Drops() uint64 { return w.drops.Load() }

// Written returns the number of frames written to the file so far
// (including the descriptor table).
func (w *Writer) Written() uint64 { return w.written.Load() }

// Truncated returns the number of string fields (or repeated groups)
// that were cut to fit their fixed-width slot.
func (w *Writer) Truncated() uint64 { return w.truncated.Load() }

// Segments returns the number of rotations performed so far (0 means
// everything is still in the base file).
func (w *Writer) Segments() uint64 { return w.segments.Load() }

// SegmentPath returns the path of rotation segment n (n ≥ 1) of the
// log at path: "room.mrl" → "room.1.mrl". Segment 0 is path itself.
func SegmentPath(path string, n int) string {
	if n == 0 {
		return path
	}
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.%d%s", path[:len(path)-len(ext)], n, ext)
}

// IsSegment reports whether path names a rotation segment
// (base.N.mrl) of a base log file that exists alongside it.
// Directory scanners (dash backfill) use this to avoid double-loading
// records that ReadLog already stitches in via the base file.
func IsSegment(path string) bool {
	ext := filepath.Ext(path)
	stem := path[:len(path)-len(ext)]
	numExt := filepath.Ext(stem)
	if len(numExt) < 2 {
		return false
	}
	for _, r := range numExt[1:] {
		if r < '0' || r > '9' {
			return false
		}
	}
	_, err := os.Stat(stem[:len(stem)-len(numExt)] + ext)
	return err == nil
}

// Close drains outstanding records, flushes and syncs the file, and
// returns the first write error encountered. Stop all producers
// before calling Close: records published after Close begins may be
// lost (they are never corrupted — the file always ends on a frame
// boundary or a cleanly-truncated tail). Close is idempotent.
func (w *Writer) Close() error {
	w.once.Do(func() { close(w.quit) })
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.werr
}

// claim grabs the next ring cell, or reports the ring full.
func (w *Writer) claim() (*cell, uint64, bool) {
	for {
		pos := w.enq.Load()
		c := &w.cells[pos&w.mask]
		seq := c.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if w.enq.CompareAndSwap(pos, pos+1) {
				return c, pos, true
			}
		case d < 0:
			return nil, 0, false // consumer hasn't freed this cell: ring full
		}
		// d > 0: another producer claimed pos first; reload and retry.
	}
}

// publish hands a filled cell to the consumer and nudges it awake.
func (w *Writer) publish(c *cell, pos uint64) {
	c.seq.Store(pos + 1)
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// RecordEvent records one telemetry event. Suitable as an
// EventLog.SetSink target.
func (w *Writer) RecordEvent(e telemetry.Event) {
	c, pos, ok := w.claim()
	if !ok {
		w.drops.Add(1)
		return
	}
	n, trunc := encodeEvent(c.buf[:], &e)
	c.typ, c.n = RecEvent, uint16(n)
	if trunc > 0 {
		w.truncated.Add(uint64(trunc))
	}
	w.publish(c, pos)
}

// RecordAlert records one alert state transition. Alert transitions
// are telemetry events (alert-pending/firing/resolved with the rule
// name as Detail), so the payload mirrors RecEvent under its own
// record type. Suitable as the alert engine transitions-log sink.
func (w *Writer) RecordAlert(e telemetry.Event) {
	c, pos, ok := w.claim()
	if !ok {
		w.drops.Add(1)
		return
	}
	n, trunc := encodeEvent(c.buf[:], &e)
	c.typ, c.n = RecAlert, uint16(n)
	if trunc > 0 {
		w.truncated.Add(uint64(trunc))
	}
	w.publish(c, pos)
}

// RecordSpan records one causal span. Suitable as a Tracer.SetSink
// target.
func (w *Writer) RecordSpan(s causal.Span) {
	c, pos, ok := w.claim()
	if !ok {
		w.drops.Add(1)
		return
	}
	n, trunc := encodeSpan(c.buf[:], &s)
	c.typ, c.n = RecSpan, uint16(n)
	if trunc > 0 {
		w.truncated.Add(uint64(trunc))
	}
	w.publish(c, pos)
}

// SetProbes records the temp-probe identity table: probe i of every
// subsequent RecTempRow is probes[i].
func (w *Writer) SetProbes(probes []telemetry.TempProbe) {
	w.metaMu.Lock()
	w.metaProbes = append(w.metaProbes[:0], probes...)
	w.metaMu.Unlock()
	for i := range probes {
		c, pos, ok := w.claim()
		if !ok {
			w.drops.Add(1)
			continue
		}
		n, trunc := encodeProbe(c.buf[:], i, &probes[i])
		c.typ, c.n = RecProbe, uint16(n)
		if trunc > 0 {
			w.truncated.Add(uint64(trunc))
		}
		w.publish(c, pos)
	}
}

// RecordTempRow records one sampled temperature column (all probes at
// virtual time at), chunking long rows. vals is copied synchronously;
// the caller may reuse it. Suitable as a TempTable.SetSink target.
func (w *Writer) RecordTempRow(at time.Duration, vals []float64) {
	for first := 0; first < len(vals) || first == 0; first += tempChunk {
		chunk := vals[first:min(first+tempChunk, len(vals))]
		c, pos, ok := w.claim()
		if !ok {
			w.drops.Add(1)
			continue
		}
		c.typ, c.n = RecTempRow, uint16(encodeTempChunk(c.buf[:], at, first, chunk))
		w.publish(c, pos)
		if first+tempChunk >= len(vals) {
			break
		}
	}
}

// RecordUtil records one applied utilization update: tick is the
// solver step count when it was applied (it influences step tick+1),
// seq the wire sequence number. The timestamp is the writer clock's
// elapsed time since the header epoch.
func (w *Writer) RecordUtil(tick uint64, machine string, seq uint32, entries []wire.UtilEntry) {
	c, pos, ok := w.claim()
	if !ok {
		w.drops.Add(1)
		return
	}
	at := w.clk.Now().Sub(w.epoch)
	n, trunc := encodeUtil(c.buf[:], tick, at, seq, machine, entries)
	c.typ, c.n = RecUtil, uint16(n)
	if trunc > 0 {
		w.truncated.Add(uint64(trunc))
	}
	w.publish(c, pos)
}

// RecordFiddle records one applied fiddle op at solver tick.
func (w *Writer) RecordFiddle(tick uint64, op *wire.FiddleOp) {
	c, pos, ok := w.claim()
	if !ok {
		w.drops.Add(1)
		return
	}
	at := w.clk.Now().Sub(w.epoch)
	n, trunc := encodeFiddle(c.buf[:], tick, at, op)
	c.typ, c.n = RecFiddle, uint16(n)
	if trunc > 0 {
		w.truncated.Add(uint64(trunc))
	}
	w.publish(c, pos)
}

// RecordBoundary records one imported boundary-temperature exchange
// (sharded runs), chunking long index lists.
func (w *Writer) RecordBoundary(tick uint64, region int, idx []int32, temps []float64) {
	for first := 0; first < len(idx) || first == 0; first += boundaryChunk {
		hi := min(first+boundaryChunk, len(idx))
		c, pos, ok := w.claim()
		if !ok {
			w.drops.Add(1)
			continue
		}
		c.typ, c.n = RecBoundary, uint16(encodeBoundaryChunk(c.buf[:], tick, region, idx[first:hi], temps[first:hi]))
		w.publish(c, pos)
		if first+boundaryChunk >= len(idx) {
			break
		}
	}
}

// RecordMeta records run metadata (solver step size, machine count).
// Call once after the solver is built.
func (w *Writer) RecordMeta(step time.Duration, machines int) {
	w.metaMu.Lock()
	w.metaStep, w.metaMachines = step, machines
	w.metaMu.Unlock()
	c, pos, ok := w.claim()
	if !ok {
		w.drops.Add(1)
		return
	}
	c.typ, c.n = RecMeta, uint16(encodeMeta(c.buf[:], step, machines))
	w.publish(c, pos)
}

// drain is the consumer goroutine: it moves published cells to the
// buffered file in ring order, flushing whenever the ring runs dry.
func (w *Writer) drain() {
	defer close(w.done)
	for {
		if w.drainAvailable() == 0 {
			w.flush()
			select {
			case <-w.notify:
			case <-w.quit:
				w.drainAvailable()
				w.flush()
				w.setErr(w.f.Sync())
				w.setErr(w.f.Close())
				return
			}
		}
	}
}

func (w *Writer) drainAvailable() int {
	n := 0
	for {
		c := &w.cells[w.deq&w.mask]
		if c.seq.Load() != w.deq+1 {
			return n
		}
		w.writeFrame(c.typ, c.buf[:c.n])
		c.seq.Store(w.deq + w.mask + 1)
		w.deq++
		n++
		w.maybeRotate()
	}
}

// writeFrame emits `type u8 | plen u16 | payload | crc32` to the
// buffered writer. The CRC (IEEE) covers type, length, and payload.
func (w *Writer) writeFrame(typ byte, payload []byte) {
	var hdr [3]byte
	hdr[0] = typ
	binary.BigEndian.PutUint16(hdr[1:], uint16(len(payload)))
	crc := crc32.Update(0, crcTable, hdr[:])
	crc = crc32.Update(crc, crcTable, payload)
	_, err := w.bw.Write(hdr[:])
	if err == nil {
		_, err = w.bw.Write(payload)
	}
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc)
	if err == nil {
		_, err = w.bw.Write(tail[:])
	}
	w.setErr(err)
	w.written.Add(1)
	w.segBytes += int64(frameOverhead + len(payload))
}

// maybeRotate closes the current segment and opens the next once it
// exceeds the configured size. Consumer goroutine only. The new
// segment gets the same header (same epoch, node, flags) plus the
// descriptor table and the cached META/probe records, so readers can
// interpret it standalone.
func (w *Writer) maybeRotate() {
	if w.maxBytes <= 0 || w.segBytes < w.maxBytes {
		return
	}
	f, err := os.Create(SegmentPath(w.path, w.seg+1))
	if err != nil {
		w.setErr(err)
		w.maxBytes = 0 // rotation broken; keep appending to the current file
		return
	}
	w.flush()
	w.setErr(w.f.Sync())
	w.setErr(w.f.Close())
	w.seg++
	w.segments.Add(1)
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	var hdr [headerSize]byte
	encodeHeader(hdr[:], w.flags, w.epoch, w.node)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.setErr(err)
	}
	w.segBytes = headerSize
	var payload [recFormatSize]byte
	for i := range formats {
		encodeFormat(payload[:], &formats[i])
		w.writeFrame(RecFormat, payload[:])
	}
	w.metaMu.Lock()
	step, machines := w.metaStep, w.metaMachines
	probes := w.metaProbes
	w.metaMu.Unlock()
	var buf [cellBuf]byte
	if step != 0 || machines != 0 {
		w.writeFrame(RecMeta, buf[:encodeMeta(buf[:], step, machines)])
	}
	for i := range probes {
		n, _ := encodeProbe(buf[:], i, &probes[i])
		w.writeFrame(RecProbe, buf[:n])
	}
}

func (w *Writer) flush() {
	w.setErr(w.bw.Flush())
}

func (w *Writer) setErr(err error) {
	if err == nil {
		return
	}
	w.mu.Lock()
	if w.werr == nil {
		w.werr = err
	}
	w.mu.Unlock()
}
