package recordlog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/darklab/mercury/internal/clock"
	"github.com/darklab/mercury/internal/telemetry"
)

// TestAlertRoundTrip writes alert transitions through the ring and
// reads them back as Log.Alerts, byte-identical and separate from the
// ordinary event stream.
func TestAlertRoundTrip(t *testing.T) {
	path := tempPath(t)
	w, err := Create(path, "solverd", clock.NewVirtual())
	if err != nil {
		t.Fatal(err)
	}
	alerts := []telemetry.Event{
		{Seq: 1, At: 6 * time.Second, Type: telemetry.EvAlertPending, Machine: "machine1", Node: "cpu", Value: 68.5, Detail: "high-temp"},
		{Seq: 2, At: 16 * time.Second, Type: telemetry.EvAlertFiring, Machine: "machine1", Node: "cpu", Value: 69.25, Detail: "high-temp"},
		{Seq: 3, At: 40 * time.Second, Type: telemetry.EvAlertResolved, Machine: "machine1", Node: "cpu", Value: 61, Detail: "high-temp"},
	}
	for _, e := range alerts {
		w.RecordAlert(e)
	}
	w.RecordEvent(telemetry.Event{Seq: 9, Type: telemetry.EvEmergencyRaised, Machine: "machine1"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Alerts) != len(alerts) {
		t.Fatalf("read %d alerts, want %d", len(log.Alerts), len(alerts))
	}
	for i, got := range log.Alerts {
		if got != alerts[i] {
			t.Errorf("alert %d = %+v, want %+v", i, got, alerts[i])
		}
	}
	if len(log.Events) != 1 || log.Events[0].Type != telemetry.EvEmergencyRaised {
		t.Errorf("events = %+v, want the one emergency event", log.Events)
	}
}

// TestRotationStitching drives a writer past its size limit several
// times and checks that (a) segment files appear, (b) every segment
// is standalone-readable with the header, descriptor table, and
// cached META/probe records re-emitted, and (c) ReadLog stitches the
// chain back into one Log with nothing lost or reordered — including
// a chunked temperature row that may straddle a rotation boundary.
func TestRotationStitching(t *testing.T) {
	path := tempPath(t)
	clk := clock.NewVirtual()
	w, err := Create(path, "solverd", clk, WithMaxBytes(4096))
	if err != nil {
		t.Fatal(err)
	}
	// 60 probes > tempChunk(56) forces two chunks per temp row.
	probes := make([]telemetry.TempProbe, 60)
	for i := range probes {
		probes[i] = telemetry.TempProbe{Machine: fmt.Sprintf("m%d", i/3+1), Node: fmt.Sprintf("n%d", i%3)}
	}
	w.RecordMeta(time.Second, 20)
	w.SetProbes(probes)
	const rows = 40
	temps := make([]float64, len(probes))
	for r := 0; r < rows; r++ {
		for i := range temps {
			temps[i] = float64(r*1000 + i)
		}
		w.RecordTempRow(time.Duration(r)*time.Second, temps)
		w.RecordEvent(telemetry.Event{Seq: uint64(r + 1), At: time.Duration(r) * time.Second, Type: telemetry.EvFiddle, Value: float64(r)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Drops() != 0 {
		t.Fatalf("dropped %d records", w.Drops())
	}
	segs := int(w.Segments())
	if segs < 2 {
		t.Fatalf("expected ≥2 rotations for %d rows at 4 KiB/segment, got %d", rows, segs)
	}
	// Every segment is standalone-readable and self-describing.
	for s := 1; s <= segs; s++ {
		p := SegmentPath(path, s)
		seg, err := ReadLog(p)
		if err != nil {
			t.Fatalf("segment %d: %v", s, err)
		}
		if seg.Header.Node != "solverd" || !seg.Header.Virtual() {
			t.Errorf("segment %d header = %+v", s, seg.Header)
		}
		if len(seg.Formats) != len(formats) {
			t.Errorf("segment %d: %d format descriptors, want %d", s, len(seg.Formats), len(formats))
		}
		if s == segs { // last segment has no successor to stitch
			if seg.Step != time.Second || seg.Machines != 20 {
				t.Errorf("segment %d META = (%v, %d), want (1s, 20)", s, seg.Step, seg.Machines)
			}
			if len(seg.Probes) != len(probes) {
				t.Errorf("segment %d: %d probes, want %d", s, len(seg.Probes), len(probes))
			}
		}
	}
	if _, err := os.Stat(SegmentPath(path, segs+1)); err == nil {
		t.Fatalf("unexpected segment %d", segs+1)
	}
	// The stitched read sees everything, in order.
	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated {
		t.Error("stitched log reports a truncated tail")
	}
	if len(log.Events) != rows {
		t.Fatalf("stitched %d events, want %d", len(log.Events), rows)
	}
	for r, e := range log.Events {
		if e.Seq != uint64(r+1) || e.Value != float64(r) {
			t.Fatalf("event %d = %+v out of order", r, e)
		}
	}
	if len(log.TempRows) != rows {
		t.Fatalf("stitched %d temp rows, want %d", len(log.TempRows), rows)
	}
	for r, row := range log.TempRows {
		if len(row.Temps) != len(probes) {
			t.Fatalf("row %d has %d temps, want %d (split across a rotation?)", r, len(row.Temps), len(probes))
		}
		if row.At != time.Duration(r)*time.Second || row.Temps[59] != float64(r*1000+59) {
			t.Fatalf("row %d = at %v temps[59]=%g", r, row.At, row.Temps[59])
		}
	}
	if len(log.Probes) != len(probes) {
		t.Fatalf("stitched %d probes, want %d", len(log.Probes), len(probes))
	}
}

func TestSegmentPaths(t *testing.T) {
	if got := SegmentPath("/logs/room.mrl", 2); got != "/logs/room.2.mrl" {
		t.Errorf("SegmentPath = %q", got)
	}
	if got := SegmentPath("room.mrl", 0); got != "room.mrl" {
		t.Errorf("SegmentPath(0) = %q", got)
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "room.mrl")
	if err := os.WriteFile(base, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "room.1.mrl")
	if err := os.WriteFile(seg, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !IsSegment(seg) {
		t.Errorf("IsSegment(%q) = false, want true", seg)
	}
	if IsSegment(base) {
		t.Errorf("IsSegment(%q) = true, want false", base)
	}
	// A dotted name with no base file alongside is not a segment.
	orphan := filepath.Join(dir, "v2.3.mrl")
	if err := os.WriteFile(orphan, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if IsSegment(orphan) {
		t.Errorf("IsSegment(%q) = true, want false (no base)", orphan)
	}
}
