package recordlog

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"
)

// sampleFileBytes builds a small valid log image without touching the
// filesystem: header, descriptor table, then n event frames.
func sampleFileBytes(n int) []byte {
	var hdr [headerSize]byte
	encodeHeader(hdr[:], FlagVirtualClock, time.Unix(0, 0), "fuzz")
	out := append([]byte(nil), hdr[:]...)
	var fbuf [recFormatSize]byte
	for i := range formats {
		encodeFormat(fbuf[:], &formats[i])
		out = append(out, frame(RecFormat, fbuf[:])...)
	}
	rng := rand.New(rand.NewSource(7))
	var ebuf [recEventSize]byte
	for i := 0; i < n; i++ {
		e := randEvent(rng)
		encodeEvent(ebuf[:], &e)
		out = append(out, frame(RecEvent, ebuf[:])...)
	}
	return out
}

// FuzzReadRecord throws arbitrary bytes at the reader: it must never
// panic, never loop forever, and classify every input as clean EOF,
// truncated tail, corrupt, or a header error. Committed seeds live in
// testdata/fuzz/FuzzReadRecord; CI extends the corpus on a schedule
// (.github/workflows/ci.yml).
func FuzzReadRecord(f *testing.F) {
	// Seed with a well-formed file, a truncated one, a corrupted one,
	// and one carrying an unknown record type. Built in memory — fuzz
	// worker processes re-run this setup, so it must not touch disk.
	valid := sampleFileBytes(5)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-10] ^= 0x55
	f.Add(corrupt)
	f.Add(append(append([]byte(nil), valid...), frame(0x6e, []byte("mystery"))...))
	f.Add([]byte(Magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A 64 KiB payload bound and the input's finite length bound
		// the loop; count records as a sanity ceiling anyway.
		for n := 0; n < len(data)+1; n++ {
			rec, err := r.Next()
			if err != nil {
				if err == io.EOF {
					return
				}
				var te *TruncatedError
				var ce *CorruptError
				if !errors.As(err, &te) && !errors.As(err, &ce) {
					t.Fatalf("Next returned unclassified error %v", err)
				}
				return
			}
			if rec == nil {
				t.Fatal("Next returned nil record with nil error")
			}
		}
		t.Fatalf("reader produced more records than input bytes (%d)", len(data))
	})
}
