package workload

import (
	"testing"
	"time"

	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/units"
)

func TestSquareShape(t *testing.T) {
	tr := Square("m", model.UtilCPU, []units.Fraction{0.5, 1.0}, 100*time.Second, 50*time.Second)
	// level, idle, level, idle, closing zero.
	if len(tr.Records) != 5 {
		t.Fatalf("records = %d", len(tr.Records))
	}
	if tr.Records[0].Util != 0.5 || tr.Records[0].At != 0 {
		t.Errorf("first = %+v", tr.Records[0])
	}
	if tr.Records[1].Util != 0 || tr.Records[1].At != 100*time.Second {
		t.Errorf("second = %+v", tr.Records[1])
	}
	if tr.Records[2].Util != 1 || tr.Records[2].At != 150*time.Second {
		t.Errorf("third = %+v", tr.Records[2])
	}
	if tr.Duration() != 300*time.Second {
		t.Errorf("duration = %v", tr.Duration())
	}
}

func TestCalibrationBenchmarks(t *testing.T) {
	cpu := CPUCalibration("server")
	if cpu.Duration() != 14000*time.Second {
		t.Errorf("CPU calibration duration = %v, want 14000s (Figure 5)", cpu.Duration())
	}
	for _, r := range cpu.Records {
		if r.Source != model.UtilCPU {
			t.Fatalf("CPU calibration touches %s", r.Source)
		}
	}
	disk := DiskCalibration("server")
	if disk.Duration() != 14000*time.Second {
		t.Errorf("disk calibration duration = %v", disk.Duration())
	}
	for _, r := range disk.Records {
		if r.Source != model.UtilDisk {
			t.Fatalf("disk calibration touches %s", r.Source)
		}
	}
}

func TestCombinedBenchmark(t *testing.T) {
	tr := Combined("m", 7, 5000*time.Second, 50*time.Second)
	if tr.Duration() != 5000*time.Second {
		t.Errorf("duration = %v", tr.Duration())
	}
	// Both sources exercised; values vary.
	perSource := map[model.UtilSource]map[units.Fraction]bool{}
	for _, r := range tr.Records {
		if perSource[r.Source] == nil {
			perSource[r.Source] = map[units.Fraction]bool{}
		}
		perSource[r.Source][r.Util] = true
	}
	if len(perSource[model.UtilCPU]) < 10 || len(perSource[model.UtilDisk]) < 10 {
		t.Errorf("combined benchmark not varied: cpu=%d disk=%d levels",
			len(perSource[model.UtilCPU]), len(perSource[model.UtilDisk]))
	}
	// Deterministic per seed.
	again := Combined("m", 7, 5000*time.Second, 50*time.Second)
	if len(again.Records) != len(tr.Records) {
		t.Fatal("non-deterministic record count")
	}
	for i := range tr.Records {
		if tr.Records[i] != again.Records[i] {
			t.Fatal("non-deterministic records")
		}
	}
	other := Combined("m", 8, 5000*time.Second, 50*time.Second)
	same := len(other.Records) == len(tr.Records)
	if same {
		diff := false
		for i := range tr.Records {
			if tr.Records[i].Util != other.Records[i].Util {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical benchmarks")
	}
}

func TestWebRateShape(t *testing.T) {
	cfg := WebConfig{Duration: 2000 * time.Second, PeakRPS: 100, ValleyShare: 0.15, Seed: 1}
	start := cfg.Rate(0)
	end := cfg.Rate(2000 * time.Second)
	if start > 20 || end > 20 {
		t.Errorf("valleys too high: start=%v end=%v", start, end)
	}
	// The peak approaches PeakRPS somewhere in the middle.
	peak := 0.0
	for s := 0; s <= 2000; s += 10 {
		if r := cfg.Rate(time.Duration(s) * time.Second); r > peak {
			peak = r
		}
	}
	if peak < 95 {
		t.Errorf("peak = %v, want near 100", peak)
	}
	// Rate stays within [valley, peak] everywhere.
	for s := -100; s <= 2100; s += 7 {
		r := cfg.Rate(time.Duration(s) * time.Second)
		if r < 14.9 || r > 100.1 {
			t.Errorf("rate(%ds) = %v escapes bounds", s, r)
		}
	}
}

func TestGenerateWeb(t *testing.T) {
	cfg := WebConfig{Duration: 2000 * time.Second, PeakRPS: 100, DynamicShare: 0.3, Seed: 1}
	reqs := GenerateWeb(cfg)
	if len(reqs) == 0 {
		t.Fatal("no requests")
	}
	// Arrivals sorted and in range.
	dynamic := 0
	for i, r := range reqs {
		if r.At < 0 || r.At >= cfg.Duration {
			t.Fatalf("request %d at %v outside trace", i, r.At)
		}
		if i > 0 && r.At < reqs[i-1].At {
			t.Fatal("arrivals not sorted")
		}
		if r.Dynamic {
			dynamic++
		}
	}
	share := float64(dynamic) / float64(len(reqs))
	if share < 0.25 || share > 0.35 {
		t.Errorf("dynamic share = %v, want ~0.30", share)
	}
	// More arrivals in the busy middle third than the first (valley).
	third := cfg.Duration / 3
	counts := [3]int{}
	for _, r := range reqs {
		counts[int(r.At/third)]++
	}
	if counts[1] < 2*counts[0] {
		t.Errorf("diurnal shape missing: thirds = %v", counts)
	}
	// Deterministic.
	again := GenerateWeb(cfg)
	if len(again) != len(reqs) {
		t.Error("non-deterministic generation")
	}
}

func TestWebDefaults(t *testing.T) {
	cfg := WebConfig{}.withDefaults()
	if cfg.Duration != 2000*time.Second || cfg.PeakRPS != 100 ||
		cfg.ValleyShare != 0.15 || cfg.DynamicShare != 0.3 {
		t.Errorf("defaults = %+v", cfg)
	}
}
