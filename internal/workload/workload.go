// Package workload generates the workloads of the paper's evaluation:
// the CPU and disk calibration microbenchmarks of Figures 5 and 6
// (square waves through utilization levels interspersed with idle
// periods), the combined validation benchmark of Figures 7 and 8
// ("widely different utilizations over time ... utilizations change
// constantly and quickly"), and the synthetic web trace of Section 5
// (diurnal valleys and peaks, 30% dynamic CGI requests of 25 ms).
package workload

import (
	"math"
	"math/rand"
	"time"

	"github.com/darklab/mercury/internal/model"
	"github.com/darklab/mercury/internal/trace"
	"github.com/darklab/mercury/internal/units"
)

// Square builds a square-wave utilization schedule: each level is held
// for hold, followed by idle for idle, repeating through levels. This
// is the shape of the paper's calibration microbenchmarks.
func Square(machine string, src model.UtilSource, levels []units.Fraction, hold, idle time.Duration) *trace.Trace {
	tr := &trace.Trace{}
	at := time.Duration(0)
	add := func(u units.Fraction) {
		tr.Records = append(tr.Records, trace.Record{At: at, Machine: machine, Source: src, Util: u.Clamp()})
	}
	for _, lv := range levels {
		add(lv)
		at += hold
		add(0)
		at += idle
	}
	// Close the trace so Duration covers the final idle period.
	add(0)
	return tr
}

// CPUCalibration is the Figure 5 microbenchmark: the CPU stepped
// through increasing utilization levels with idle gaps, ~14000 s total.
func CPUCalibration(machine string) *trace.Trace {
	return Square(machine, model.UtilCPU,
		[]units.Fraction{0.25, 0.5, 0.75, 1.0, 0.6},
		1800*time.Second, 1000*time.Second)
}

// DiskCalibration is the Figure 6 microbenchmark for the disk.
func DiskCalibration(machine string) *trace.Trace {
	return Square(machine, model.UtilDisk,
		[]units.Fraction{0.25, 0.5, 0.75, 1.0, 0.6},
		1800*time.Second, 1000*time.Second)
}

// Combined is the Figures 7/8 validation benchmark: both components
// exercised at once with quickly changing, widely different
// utilizations. Deterministic for a given seed. Levels change every
// interval (the paper's benchmark shifts every few tens of seconds).
func Combined(machine string, seed int64, duration, interval time.Duration) *trace.Trace {
	if interval <= 0 {
		interval = 50 * time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{}
	for at := time.Duration(0); at <= duration; at += interval {
		cpu := units.Fraction(rng.Float64())
		disk := units.Fraction(rng.Float64())
		// Occasionally slam to the rails, as real phase changes do.
		switch rng.Intn(5) {
		case 0:
			cpu = 1
		case 1:
			cpu = 0
		}
		tr.Records = append(tr.Records,
			trace.Record{At: at, Machine: machine, Source: model.UtilCPU, Util: cpu},
			trace.Record{At: at, Machine: machine, Source: model.UtilDisk, Util: disk},
		)
	}
	return tr
}

// Request is one client request of the web workload.
type Request struct {
	// At is the arrival time relative to trace start.
	At time.Duration
	// Dynamic marks CGI requests that compute for ~25 ms; static
	// requests are cheap CPU plus a disk access.
	Dynamic bool
}

// WebConfig shapes the Section 5 synthetic web trace: "the timing of
// the requests mimics the well-known traffic pattern of most Internet
// services, consisting of recurring load valleys (over night) followed
// by load peaks (in the afternoon)".
type WebConfig struct {
	// Duration of the trace. The Freon runs use 2000 s.
	Duration time.Duration
	// PeakRPS is the arrival rate at the load peak.
	PeakRPS float64
	// ValleyShare is the valley rate as a share of peak (default 0.15).
	ValleyShare float64
	// DynamicShare is the fraction of dynamic-content requests
	// (default 0.3).
	DynamicShare float64
	// Seed makes the trace reproducible.
	Seed int64
}

func (c WebConfig) withDefaults() WebConfig {
	if c.Duration <= 0 {
		c.Duration = 2000 * time.Second
	}
	if c.PeakRPS <= 0 {
		c.PeakRPS = 100
	}
	if c.ValleyShare <= 0 || c.ValleyShare > 1 {
		c.ValleyShare = 0.15
	}
	if c.DynamicShare <= 0 || c.DynamicShare > 1 {
		// The zero value selects the paper's 30% dynamic-content mix.
		c.DynamicShare = 0.3
	}
	return c
}

// Rate returns the instantaneous arrival rate at offset t. The shape
// mimics the paper's Internet-service pattern: a quiet night at both
// ends of the trace, a morning ramp, and a sustained afternoon plateau
// at the peak rate (Figure 11's utilizations stay high for several
// hundred seconds before subsiding).
func (c WebConfig) Rate(t time.Duration) float64 {
	c = c.withDefaults()
	x := float64(t) / float64(c.Duration)
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	const (
		rampStart    = 0.12 // end of the night valley
		plateauStart = 0.42 // morning ramp complete
		plateauEnd   = 0.80 // evening decline begins
	)
	var shape float64
	switch {
	case x < rampStart:
		shape = 0
	case x < plateauStart:
		f := (x - rampStart) / (plateauStart - rampStart)
		shape = 0.5 - 0.5*math.Cos(math.Pi*f)
	case x < plateauEnd:
		shape = 1
	default:
		f := (x - plateauEnd) / (1 - plateauEnd)
		shape = 0.5 + 0.5*math.Cos(math.Pi*f)
	}
	valley := c.PeakRPS * c.ValleyShare
	return valley + (c.PeakRPS-valley)*shape
}

// GenerateWeb produces the request arrivals via thinning of a Poisson
// process at the peak rate.
func GenerateWeb(cfg WebConfig) []Request {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Request
	t := 0.0
	end := cfg.Duration.Seconds()
	for {
		t += rng.ExpFloat64() / cfg.PeakRPS
		if t >= end {
			return out
		}
		at := time.Duration(t * float64(time.Second))
		if rng.Float64()*cfg.PeakRPS > cfg.Rate(at) {
			continue // thinned out
		}
		out = append(out, Request{At: at, Dynamic: rng.Float64() < cfg.DynamicShare})
	}
}
