#!/bin/sh
# bench.sh — run the full benchmark suite once and record the results
# as BENCH_<date>.json in the repo root, seeding the local performance
# trajectory (docs/performance.md explains how to read and refresh the
# files). Pass extra `go test` arguments through, e.g.:
#
#   scripts/bench.sh                      # everything, one iteration
#   scripts/bench.sh -bench=ScaleoutStep  # just the scale-out family
#   scripts/bench.sh -bench=OnlineWarp    # online-mode warp throughput
#
# BenchmarkOnlineWarp reports emu-s/s — emulated seconds per wall
# second for the loopback-UDP daemon stack (docs/virtual-time.md) —
# so BENCH_*.json tracks online-mode throughput alongside the solver
# numbers.
set -eu

cd "$(dirname "$0")/.."

date="$(date +%Y%m%d)"
out="BENCH_${date}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

if [ "$#" -gt 0 ]; then
    go test -benchtime=1x -run='^$' "$@" ./... | tee "$raw"
else
    go test -bench=. -benchtime=1x -run='^$' ./... | tee "$raw"
fi

# Convert `go test -bench` lines into a JSON document:
# {"date": ..., "go": ..., "benchmarks": [{"name":..., "iterations":...,
#  "ns_per_op":..., "metrics": {"machine-steps/s": ...}}, ...]}
awk -v date="$date" -v goversion="$(go version)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", date, goversion
    n = 0
}
/^Benchmark/ {
    name = $1; iters = $2
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, iters
    m = 0
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        if (unit == "ns/op") {
            printf ", \"ns_per_op\": %s", $i
        } else {
            if (!m++) printf ", \"metrics\": {"
            else printf ", "
            gsub(/"/, "", unit)
            printf "\"%s\": %s", unit, $i
        }
    }
    if (m) printf "}"
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

echo "wrote $out"
