#!/bin/sh
# bench.sh — run the full benchmark suite once and record the results
# as BENCH_<date>.json in the repo root, seeding the local performance
# trajectory (docs/performance.md explains how to read and refresh the
# files). Pass extra `go test` arguments through, e.g.:
#
#   scripts/bench.sh                      # everything, one iteration
#   scripts/bench.sh -bench=ScaleoutStep  # just the scale-out family
#   scripts/bench.sh -bench=OnlineWarp    # online-mode warp throughput
#
# With `-count=N` each benchmark runs N times and the recorded entry is
# the repetition with the lowest ns/op — min-of-N is the standard way
# to cut scheduler noise on shared runners, and it is how the committed
# baselines used by scripts/bench_diff.sh are produced:
#
#   scripts/bench.sh -bench=ScaleoutStep -benchtime=100x -count=5
#
# BenchmarkOnlineWarp reports emu-s/s — emulated seconds per wall
# second for the loopback-UDP daemon stack (docs/virtual-time.md) —
# so BENCH_*.json tracks online-mode throughput alongside the solver
# numbers.
#
# BenchmarkUtilBatch (internal/wire) reports bytes/interval and
# datagrams/interval for a 16-machine rack sent as one batched
# utilization datagram versus sixteen 128-byte singles, so BENCH_*.json
# also tracks the scale-out wire costs (docs/protocol.md).
#
# BenchmarkWhatIf compares the three steady-state what-if engines on a
# 1000-machine room (surrogate / analytic SteadyState / kernel stepped
# to convergence; docs/surrogate.md), so BENCH_*.json records the fast
# path's speedup — the surrogate entry must stay >=100x faster than
# both exact paths — and the record sub-benchmark's allocs/op pins the
# trajectory-recording hot path at zero.
#
# Benchmarks run with -benchmem, so B/op and allocs/op land in each
# entry's metrics; scripts/bench_diff.sh uses allocs/op to flag hot
# paths that were allocation-free and have started allocating.
set -eu

cd "$(dirname "$0")/.."

date="$(date +%Y%m%d)"
out="BENCH_${date}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

if [ "$#" -gt 0 ]; then
    go test -benchtime=1x -benchmem -run='^$' "$@" ./... | tee "$raw"
else
    go test -bench=. -benchtime=1x -benchmem -run='^$' ./... | tee "$raw"
fi

# Convert `go test -bench` lines into a JSON document:
# {"date": ..., "go": ..., "benchmarks": [{"name":..., "iterations":...,
#  "ns_per_op":..., "metrics": {"machine-steps/s": ...}}, ...]}
awk -v date="$date" -v goversion="$(go version)" '
/^Benchmark/ {
    name = $1
    ns = ""
    for (i = 3; i < NF; i += 2) {
        if ($(i + 1) == "ns/op") ns = $i + 0
    }
    if (!(name in best)) {
        order[++n] = name
        best[name] = ns
        line[name] = $0
    } else if (ns != "" && ns < best[name]) {
        best[name] = ns
        line[name] = $0
    }
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", date, goversion
    for (b = 1; b <= n; b++) {
        $0 = line[order[b]]
        if (b > 1) printf ","
        printf "\n    {\"name\": \"%s\", \"iterations\": %s", $1, $2
        m = 0
        for (i = 3; i < NF; i += 2) {
            unit = $(i + 1)
            if (unit == "ns/op") {
                printf ", \"ns_per_op\": %s", $i
            } else {
                if (!m++) printf ", \"metrics\": {"
                else printf ", "
                gsub(/"/, "", unit)
                printf "\"%s\": %s", unit, $i
            }
        }
        if (m) printf "}"
        printf "}"
    }
    printf "\n  ]\n}\n"
}
' "$raw" > "$out"

echo "wrote $out"
