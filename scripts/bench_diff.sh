#!/bin/sh
# bench_diff.sh — compare the machine-steps/s metrics of two
# BENCH_*.json files (as written by scripts/bench.sh) and flag
# throughput regressions:
#
#   scripts/bench_diff.sh [-enforce] BENCH_20260809.json BENCH_now.json [min-ratio]
#
# For every benchmark present in both files, the current value is
# compared against the baseline; a ratio below min-ratio produces a
# diagnostic. The script has two modes:
#
#   warn (default): min-ratio defaults to 0.5 and the script always
#   exits 0 — a tripwire for gross regressions on noisy shared
#   runners, rendered as `::warning::` annotations by GitHub Actions.
#
#   -enforce: min-ratio defaults to 0.9 (the documented 10% regression
#   budget — see docs/performance.md and README.md) and any benchmark
#   below it, or any allocation regression, emits `::error::` and makes
#   the script exit 1. This is the PR bench gate wired up in
#   .github/workflows/ci.yml; commits carrying `[bench-skip]` in their
#   message bypass the gate there, not here.
#
# allocs/op is deterministic: when both files carry it (bench.sh runs
# with -benchmem), any benchmark that was allocation-free in the
# baseline and now allocates is flagged regardless of min-ratio — the
# zero-alloc hot paths (solver stepping, telemetry sampling) must not
# silently regress. Baselines recorded before -benchmem simply skip
# this check.
#
# BenchmarkRecordWrite and BenchmarkAlertEval are additionally
# must-zeros: the flight-recorder write path (docs/recordlog.md) and
# the alert engine's per-tick evaluation (docs/observability.md) are
# documented as 0 allocs/op, so the current run is checked on its own —
# the tripwire holds even before a committed baseline carries the
# benchmark.
set -eu

enforce=0
if [ "${1:-}" = "-enforce" ]; then
    enforce=1
    shift
fi

if [ "$#" -lt 2 ]; then
    echo "usage: $0 [-enforce] baseline.json current.json [min-ratio]" >&2
    exit 2
fi
base="$1"
cur="$2"
if [ "$enforce" = 1 ]; then
    minratio="${3:-0.9}"
    level=error
else
    minratio="${3:-0.5}"
    level=warning
fi

# The JSON is machine-written, one benchmark object per line, so a sed
# scrape is reliable: "name value" pairs for benchmarks that report
# machine-steps/s, and likewise for allocs/op.
extract() {
    sed -n 's#.*"name": "\([^"]*\)".*"machine-steps/s": \([0-9.e+]*\).*#\1 \2#p' "$1"
}
extract_allocs() {
    sed -n 's#.*"name": "\([^"]*\)".*"allocs/op": \([0-9.e+]*\).*#\1 \2#p' "$1"
}

basetmp="$(mktemp)"
allocstmp="$(mktemp)"
failtmp="$(mktemp)"
trap 'rm -f "$basetmp" "$allocstmp" "$failtmp"' EXIT
extract "$base" > "$basetmp"
extract_allocs "$base" > "$allocstmp"

extract "$cur" | awk -v minratio="$minratio" -v basefile="$base" -v level="$level" '
NR == FNR { baseline[$1] = $2; next }
$1 in baseline {
    compared++
    ratio = $2 / baseline[$1]
    printf "%-60s %14.0f -> %14.0f  (%.2fx)\n", $1, baseline[$1], $2, ratio
    if (ratio < minratio) {
        flagged++
        printf "::%s::%s throughput %.0f machine-steps/s is %.2fx the %s baseline (%.0f)\n",
            level, $1, $2, ratio, basefile, baseline[$1]
    }
    next
}
{
    # A benchmark with no baseline entry is new in this run: report it
    # for the record but never gate on it — it gets a baseline the next
    # time the committed BENCH file is refreshed.
    newbench++
    printf "%-60s %14s    %14.0f  (new; informational)\n", $1, "-", $2
}
END {
    if (!compared && !newbench) {
        printf "::%s::no common machine-steps/s benchmarks between %s and the current run\n", level, basefile
        flagged++
    } else {
        printf "%d benchmark(s) compared against %s, %d new (informational), %d flagged at min-ratio %s\n",
            compared + 0, basefile, newbench + 0, flagged + 0, minratio
    }
    exit flagged ? 3 : 0
}
' "$basetmp" - || echo throughput >> "$failtmp"

# Allocation tripwire: a benchmark that was 0 allocs/op in the
# baseline must stay 0. Unlike throughput this is deterministic, so
# any regression is flagged even in warn mode.
extract_allocs "$cur" | awk -v basefile="$base" -v level="$level" '
NR == FNR { baseline[$1] = $2; next }
$1 in baseline {
    compared++
    if (baseline[$1] == 0 && $2 > 0) {
        flagged++
        printf "::%s::%s allocates %d times/op but was allocation-free in the %s baseline\n",
            level, $1, $2, basefile
    }
}
END {
    if (compared) printf "%d benchmark(s) checked for allocation regressions\n", compared
    else printf "no allocs/op data in common (baseline predates -benchmem?); skipping allocation check\n"
    exit flagged ? 3 : 0
}
' "$allocstmp" - || echo allocs >> "$failtmp"

# Must-zero tripwire: the flight-recorder write path and the alert
# engine's per-tick eval have no baseline grace period — any
# allocation in the current run is flagged.
extract_allocs "$cur" | awk -v level="$level" '
$1 ~ /BenchmarkRecordWrite|BenchmarkAlertEval/ {
    checked++
    if ($2 > 0) {
        flagged++
        printf "::%s::%s allocates %d times/op; this hot path must stay at 0 allocs/op (docs/recordlog.md, docs/observability.md)\n",
            level, $1, $2
    }
}
END {
    if (checked) printf "%d hot-path benchmark(s) checked against the must-zero allocs/op rule\n", checked
    exit flagged ? 3 : 0
}
' || echo must-zero-allocs >> "$failtmp"

if [ "$enforce" = 1 ] && [ -s "$failtmp" ]; then
    echo "bench gate FAILED ($(tr '\n' ' ' < "$failtmp")); see ::error:: lines above" >&2
    echo "a >10% machine-steps/s regression needs either a fix or a refreshed committed baseline;" >&2
    echo "put [bench-skip] in the commit message to bypass a known-noisy run (docs/performance.md)" >&2
    exit 1
fi
exit 0
