#!/bin/sh
# bench_diff.sh — compare the machine-steps/s metrics of two
# BENCH_*.json files (as written by scripts/bench.sh) and warn about
# throughput regressions:
#
#   scripts/bench_diff.sh BENCH_20260806.json BENCH_now.json [min-ratio]
#
# For every benchmark present in both files, the current value is
# compared against the baseline; a ratio below min-ratio (default 0.5,
# i.e. current throughput less than half the baseline) produces a
# warning. The tolerance is deliberately generous and the script always
# exits 0: shared CI runners are far too noisy for a hard gate (see
# docs/performance.md), so this is a tripwire for gross regressions,
# not a pass/fail check. GitHub Actions renders the `::warning::`
# lines as annotations.
set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 baseline.json current.json [min-ratio]" >&2
    exit 2
fi
base="$1"
cur="$2"
minratio="${3:-0.5}"

# The JSON is machine-written, one benchmark object per line, so a sed
# scrape is reliable: "name value" pairs for benchmarks that report
# machine-steps/s.
extract() {
    sed -n 's#.*"name": "\([^"]*\)".*"machine-steps/s": \([0-9.e+]*\).*#\1 \2#p' "$1"
}

basetmp="$(mktemp)"
trap 'rm -f "$basetmp"' EXIT
extract "$base" > "$basetmp"

extract "$cur" | awk -v minratio="$minratio" -v basefile="$base" '
NR == FNR { baseline[$1] = $2; next }
$1 in baseline {
    compared++
    ratio = $2 / baseline[$1]
    printf "%-60s %14.0f -> %14.0f  (%.2fx)\n", $1, baseline[$1], $2, ratio
    if (ratio < minratio) {
        warned++
        printf "::warning::%s throughput %.0f machine-steps/s is %.2fx the %s baseline (%.0f)\n",
            $1, $2, ratio, basefile, baseline[$1]
    }
}
END {
    if (!compared) {
        printf "::warning::no common machine-steps/s benchmarks between %s and the current run\n", basefile
    } else {
        printf "%d benchmark(s) compared against %s, %d warning(s) at min-ratio %s\n",
            compared, basefile, warned + 0, minratio
    }
}
' "$basetmp" -
