#!/bin/sh
# bench_diff.sh — compare the machine-steps/s metrics of two
# BENCH_*.json files (as written by scripts/bench.sh) and warn about
# throughput regressions:
#
#   scripts/bench_diff.sh BENCH_20260806.json BENCH_now.json [min-ratio]
#
# For every benchmark present in both files, the current value is
# compared against the baseline; a ratio below min-ratio (default 0.5,
# i.e. current throughput less than half the baseline) produces a
# warning. The tolerance is deliberately generous and the script always
# exits 0: shared CI runners are far too noisy for a hard gate (see
# docs/performance.md), so this is a tripwire for gross regressions,
# not a pass/fail check. GitHub Actions renders the `::warning::`
# lines as annotations.
#
# allocs/op, by contrast, is deterministic: when both files carry it
# (bench.sh runs with -benchmem), any benchmark that was allocation-
# free in the baseline and now allocates gets a warning regardless of
# min-ratio — the zero-alloc hot paths (solver stepping, telemetry
# sampling) must not silently regress. Baselines recorded before
# -benchmem simply skip this check.
set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 baseline.json current.json [min-ratio]" >&2
    exit 2
fi
base="$1"
cur="$2"
minratio="${3:-0.5}"

# The JSON is machine-written, one benchmark object per line, so a sed
# scrape is reliable: "name value" pairs for benchmarks that report
# machine-steps/s, and likewise for allocs/op.
extract() {
    sed -n 's#.*"name": "\([^"]*\)".*"machine-steps/s": \([0-9.e+]*\).*#\1 \2#p' "$1"
}
extract_allocs() {
    sed -n 's#.*"name": "\([^"]*\)".*"allocs/op": \([0-9.e+]*\).*#\1 \2#p' "$1"
}

basetmp="$(mktemp)"
allocstmp="$(mktemp)"
trap 'rm -f "$basetmp" "$allocstmp"' EXIT
extract "$base" > "$basetmp"
extract_allocs "$base" > "$allocstmp"

extract "$cur" | awk -v minratio="$minratio" -v basefile="$base" '
NR == FNR { baseline[$1] = $2; next }
$1 in baseline {
    compared++
    ratio = $2 / baseline[$1]
    printf "%-60s %14.0f -> %14.0f  (%.2fx)\n", $1, baseline[$1], $2, ratio
    if (ratio < minratio) {
        warned++
        printf "::warning::%s throughput %.0f machine-steps/s is %.2fx the %s baseline (%.0f)\n",
            $1, $2, ratio, basefile, baseline[$1]
    }
}
END {
    if (!compared) {
        printf "::warning::no common machine-steps/s benchmarks between %s and the current run\n", basefile
    } else {
        printf "%d benchmark(s) compared against %s, %d warning(s) at min-ratio %s\n",
            compared, basefile, warned + 0, minratio
    }
}
' "$basetmp" -

# Allocation tripwire: a benchmark that was 0 allocs/op in the
# baseline must stay 0. Unlike throughput this is deterministic, so
# any regression is flagged; the warning is still advisory (exit 0)
# because the hard gate is the benchmark job itself.
extract_allocs "$cur" | awk -v basefile="$base" '
NR == FNR { baseline[$1] = $2; next }
$1 in baseline {
    compared++
    if (baseline[$1] == 0 && $2 > 0) {
        printf "::warning::%s allocates %d times/op but was allocation-free in the %s baseline\n",
            $1, $2, basefile
    }
}
END {
    if (compared) printf "%d benchmark(s) checked for allocation regressions\n", compared
    else printf "no allocs/op data in common (baseline predates -benchmem?); skipping allocation check\n"
}
' "$allocstmp" -
